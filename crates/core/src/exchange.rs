//! Halo exchange: moving boundary messages between devices, at full
//! precision (Vanilla) or quantized (AdaQP), with byte and time accounting.

use crate::decompose::DevicePartition;
use bytes::Bytes;
use comm::{CostModel, DeviceHandle};
use quant::{
    decode_block, encode_block_streamed, encode_block_with_stats, BitWidth, EncodedBlock,
    StreamProfile,
};
use tensor::{Matrix, Rng};

/// Operations per element of the quantization encoder (hash coin + scale +
/// truncate + pack), calibrated against the measured kernel throughput.
pub const ENCODE_OPS_PER_ELEMENT: f64 = 15.0;

/// Operations per element of the de-quantization decoder (unpack + fma).
pub const DECODE_OPS_PER_ELEMENT: f64 = 4.0;

/// Byte and kernel accounting for one exchange.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExchangeStats {
    /// Bytes sent to each destination rank.
    pub sent_bytes: Vec<usize>,
    /// Bytes received from each source rank.
    pub recv_bytes: Vec<usize>,
    /// Measured CPU seconds spent in quantize/de-quantize kernels
    /// (diagnostic only; the clock charges `quant_ops` instead so the
    /// simulation is immune to host load).
    pub quant_cpu_seconds: f64,
    /// Elements quantized (encoder side, including error-feedback
    /// self-decodes at decoder cost).
    pub quant_ops: f64,
    /// Per-width quantization statistics (rows, ranges, expected squared
    /// error) from the row-major quantized exchanges; zero for fp32 and
    /// group-major paths.
    pub encode_stats: quant::EncodeStats,
    /// Pipelined quantize+send seconds per destination, filled by the
    /// streamed exchanges ([`exchange_forward_quant_streamed`]): chunk `k`'s
    /// transfer starts once its rows are encoded and the previous chunk has
    /// left the NIC, so this time *includes* both the encode compute and the
    /// transfer for that destination. Zero entries mean the destination was
    /// not streamed and [`ExchangeStats::ring_seconds`] falls back to the
    /// plain transfer model (with encode charged separately via
    /// `quant_ops`).
    pub streamed_send: Vec<f64>,
}

impl ExchangeStats {
    fn new(n: usize) -> Self {
        Self {
            sent_bytes: vec![0; n],
            recv_bytes: vec![0; n],
            quant_cpu_seconds: 0.0,
            quant_ops: 0.0,
            encode_stats: quant::EncodeStats::default(),
            streamed_send: vec![0.0; n],
        }
    }

    /// Total bytes sent.
    pub fn total_sent(&self) -> usize {
        self.sent_bytes.iter().sum()
    }

    /// Merges another exchange's accounting into this one.
    pub fn merge(&mut self, other: &ExchangeStats) {
        for (a, b) in self.sent_bytes.iter_mut().zip(&other.sent_bytes) {
            *a += b;
        }
        for (a, b) in self.recv_bytes.iter_mut().zip(&other.recv_bytes) {
            *a += b;
        }
        self.quant_cpu_seconds += other.quant_cpu_seconds;
        self.quant_ops += other.quant_ops;
        self.encode_stats.merge(&other.encode_stats);
        for (a, b) in self.streamed_send.iter_mut().zip(&other.streamed_send) {
            *a += b;
        }
    }

    /// Simulated communication seconds for this device under the
    /// unsynchronized ring schedule: in round `r` the device waits for the
    /// longer of its own send and its own receive.
    pub fn ring_seconds(&self, cost: &CostModel, rank: usize) -> f64 {
        let n = cost.num_devices();
        let mut t = 0.0;
        for round in 1..n {
            let dst = (rank + round) % n;
            let src = (rank + n - round) % n;
            // A streamed destination's send time already folds the encode
            // pipeline in (and is never less than the bare transfer), so the
            // max picks it up without double-charging the non-streamed case.
            let send = cost
                .transfer_time(rank, dst, self.sent_bytes[dst])
                .max(self.streamed_send.get(dst).copied().unwrap_or(0.0));
            let recv = cost.transfer_time(src, rank, self.recv_bytes[src]);
            t += send.max(recv);
        }
        t
    }

    /// Simulated communication seconds under SANCUS's sequential-broadcast
    /// schedule: devices take turns, and a broadcasting device pushes a
    /// separate unicast copy to every peer through its single NIC, so each
    /// turn costs the *sum* of its point-to-point transfers. Peers observe a
    /// broadcaster's full turn (they wait for the round to finish), which
    /// each rank reconstructs from the bytes it received (a broadcast sends
    /// the same payload to every destination).
    pub fn sequential_seconds(&self, cost: &CostModel, rank: usize) -> f64 {
        let n = cost.num_devices();
        let mut total = 0.0;
        for turn in 0..n {
            let mut t: f64 = 0.0;
            if turn == rank {
                for (dst, &b) in self.sent_bytes.iter().enumerate() {
                    if dst != rank {
                        t += cost.transfer_time(rank, dst, b);
                    }
                }
            } else {
                let b = self.recv_bytes[turn];
                for dst in 0..n {
                    if dst != turn {
                        t += cost.transfer_time(turn, dst, b);
                    }
                }
            }
            total += t;
        }
        total
    }
}

/// Serializes a row-major matrix to little-endian `f32` bytes.
pub fn matrix_to_bytes(m: &Matrix) -> Bytes {
    let mut raw = Vec::with_capacity(m.len() * 4);
    for v in m.as_slice() {
        raw.extend_from_slice(&v.to_le_bytes());
    }
    Bytes::from(raw)
}

/// Deserializes little-endian `f32` bytes into a `rows x cols` matrix.
///
/// # Panics
///
/// Panics if the byte length is not `rows * cols * 4`.
pub fn bytes_to_matrix(bytes: &Bytes, rows: usize, cols: usize) -> Matrix {
    assert_eq!(bytes.len(), rows * cols * 4, "fp32 payload size mismatch");
    let data: Vec<f32> = bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    // lint:allow(no-panic): length asserted four lines up; from_vec can only reject a size mismatch
    Matrix::from_vec(rows, cols, data).expect("sized by construction")
}

/// Full-precision forward halo exchange: sends boundary rows of `x` to every
/// peer and returns the filled halo matrix (`num_halo x dim`).
pub fn exchange_forward_fp32(
    dev: &mut DeviceHandle,
    part: &DevicePartition,
    x: &Matrix,
) -> (Matrix, ExchangeStats) {
    let n = part.num_parts;
    let dim = x.cols();
    let mut stats = ExchangeStats::new(n);
    let mut payloads: Vec<Bytes> = Vec::with_capacity(n);
    for q in 0..n {
        if q == part.rank || part.send_sets[q].is_empty() {
            payloads.push(Bytes::new());
            continue;
        }
        let msgs = part.gather_send_rows(x, q);
        let b = matrix_to_bytes(&msgs);
        stats.sent_bytes[q] = b.len();
        payloads.push(b);
    }
    let received = dev.ring_all2all(payloads);
    let mut halo = Matrix::zeros(part.num_halo(), dim);
    for (q, payload) in received.into_iter().enumerate() {
        let Some(payload) = payload else { continue };
        stats.recv_bytes[q] = payload.len();
        if payload.is_empty() {
            continue;
        }
        let rows = part.recv_slots[q].len();
        let m = bytes_to_matrix(&payload, rows, dim);
        for (r, &slot) in part.recv_slots[q].iter().enumerate() {
            halo.row_mut(slot as usize).copy_from_slice(m.row(r));
        }
    }
    (halo, stats)
}

/// Quantized forward halo exchange. `widths[q]` gives the bit-width of each
/// message to peer `q`, aligned with `part.send_sets[q]`.
///
/// # Panics
///
/// Panics if a width vector's length disagrees with its send set.
pub fn exchange_forward_quant(
    dev: &mut DeviceHandle,
    part: &DevicePartition,
    x: &Matrix,
    widths: &[Vec<BitWidth>],
    rng: &mut Rng,
) -> (Matrix, ExchangeStats) {
    exchange_forward_quant_ef(dev, part, x, widths, None, rng)
}

/// [`exchange_forward_quant`] with optional error feedback: when `residuals`
/// is provided (one matrix per peer, aligned with the send sets), the last
/// round's quantization error is added to each outgoing message before
/// quantizing and the new error is stored back — the classic
/// error-compensated compression scheme (Wu et al. 2018), offered as an
/// extension beyond the paper.
///
/// # Panics
///
/// Panics if widths or residual shapes disagree with the send sets.
pub fn exchange_forward_quant_ef(
    dev: &mut DeviceHandle,
    part: &DevicePartition,
    x: &Matrix,
    widths: &[Vec<BitWidth>],
    mut residuals: Option<&mut Vec<Matrix>>,
    rng: &mut Rng,
) -> (Matrix, ExchangeStats) {
    let n = part.num_parts;
    let dim = x.cols();
    let mut stats = ExchangeStats::new(n);
    let mut payloads: Vec<Bytes> = Vec::with_capacity(n);
    for q in 0..n {
        if q == part.rank || part.send_sets[q].is_empty() {
            payloads.push(Bytes::new());
            continue;
        }
        assert_eq!(
            widths[q].len(),
            part.send_sets[q].len(),
            "one width per message to peer {q}"
        );
        let mut msgs = part.gather_send_rows(x, q);
        if let Some(res) = residuals.as_deref_mut() {
            assert_eq!(res[q].shape(), msgs.shape(), "residual shape for peer {q}");
            msgs.add_assign(&res[q]);
        }
        let ((block, enc_stats), secs) =
            comm::timing::measure(|| encode_block_with_stats(&msgs, &widths[q], rng));
        stats.quant_cpu_seconds += secs;
        stats.quant_ops += msgs.len() as f64 * ENCODE_OPS_PER_ELEMENT;
        stats.encode_stats.merge(&enc_stats);
        if let Some(res) = residuals.as_deref_mut() {
            // New residual = compensated message - what the receiver decodes.
            let (decoded, dsecs) =
                // lint:allow(no-panic): decoding the block this function encoded two lines up
                comm::timing::measure(|| decode_block(&block).expect("own block decodes"));
            stats.quant_cpu_seconds += dsecs;
            stats.quant_ops += msgs.len() as f64 * (DECODE_OPS_PER_ELEMENT + 2.0);
            let mut r = msgs;
            r.sub_assign(&decoded);
            res[q] = r;
        }
        stats.sent_bytes[q] = block.wire_len();
        payloads.push(block.bytes);
    }
    let received = dev.ring_all2all(payloads);
    let mut halo = Matrix::zeros(part.num_halo(), dim);
    for (q, payload) in received.into_iter().enumerate() {
        let Some(payload) = payload else { continue };
        stats.recv_bytes[q] = payload.len();
        if payload.is_empty() {
            continue;
        }
        let rows = part.recv_slots[q].len();
        let block = EncodedBlock {
            bytes: payload,
            rows,
            dim,
        };
        let (decoded, secs) =
            // lint:allow(no-panic): peers run this same codec; a malformed block is a codec bug, not runtime state
            comm::timing::measure(|| decode_block(&block).expect("peer sent a well-formed block"));
        stats.quant_cpu_seconds += secs;
        stats.quant_ops += (rows * dim) as f64 * DECODE_OPS_PER_ELEMENT;
        for (r, &slot) in part.recv_slots[q].iter().enumerate() {
            halo.row_mut(slot as usize).copy_from_slice(decoded.row(r));
        }
    }
    (halo, stats)
}

/// Pipelined quantize+send seconds for one destination under the streamed
/// exchange: the encoder produces the block chunk by chunk (the codec's
/// fixed parallel ranges), and chunk `k` enters the wire as soon as both
/// its rows are encoded (the CPU prefix) and chunk `k-1` has left the NIC.
/// Chunks after the first ride the same message, so they do not re-pay the
/// link setup latency `gamma`.
///
/// Two bounds follow directly from the recurrence and pin the model's
/// sanity: the result is at least the bare transfer time of the whole
/// block, and at most the serial `encode + transfer` total the
/// non-streamed path charges.
pub fn streamed_send_seconds(
    cost: &CostModel,
    src: usize,
    dst: usize,
    profile: &StreamProfile,
) -> f64 {
    let (_, gamma) = cost.link_params(src, dst);
    let mut cpu = 0.0_f64;
    let mut nic = 0.0_f64;
    for (k, chunk) in profile.chunks.iter().enumerate() {
        cpu += cost.ops_time_for(src, chunk.elements as f64 * ENCODE_OPS_PER_ELEMENT);
        let mut wire = cost.transfer_time(src, dst, chunk.wire_bytes);
        if k > 0 {
            wire = (wire - gamma).max(0.0);
        }
        nic = nic.max(cpu) + wire;
    }
    nic
}

/// [`exchange_forward_quant`] with the quantize+send pipeline: each peer's
/// block is encoded chunk by chunk and the chunks are charged to the wire
/// as they finish, overlapping encode compute with the transfer
/// ([`streamed_send_seconds`]). Wire bytes, decoded halos, statistics, and
/// the RNG stream are byte-identical to the non-streamed exchange — only
/// the time accounting changes: encode work is folded into
/// `streamed_send` instead of `quant_ops`.
///
/// # Panics
///
/// Panics if a width vector's length disagrees with its send set.
pub fn exchange_forward_quant_streamed(
    dev: &mut DeviceHandle,
    part: &DevicePartition,
    x: &Matrix,
    widths: &[Vec<BitWidth>],
    rng: &mut Rng,
    cost: &CostModel,
) -> (Matrix, ExchangeStats) {
    let n = part.num_parts;
    let dim = x.cols();
    let mut stats = ExchangeStats::new(n);
    let mut payloads: Vec<Bytes> = Vec::with_capacity(n);
    for q in 0..n {
        if q == part.rank || part.send_sets[q].is_empty() {
            payloads.push(Bytes::new());
            continue;
        }
        assert_eq!(
            widths[q].len(),
            part.send_sets[q].len(),
            "one width per message to peer {q}"
        );
        let msgs = part.gather_send_rows(x, q);
        let ((block, enc_stats, profile), secs) =
            comm::timing::measure(|| encode_block_streamed(&msgs, &widths[q], rng));
        stats.quant_cpu_seconds += secs;
        stats.encode_stats.merge(&enc_stats);
        stats.streamed_send[q] = streamed_send_seconds(cost, part.rank, q, &profile);
        stats.sent_bytes[q] = block.wire_len();
        payloads.push(block.bytes);
    }
    let received = dev.ring_all2all(payloads);
    let mut halo = Matrix::zeros(part.num_halo(), dim);
    for (q, payload) in received.into_iter().enumerate() {
        let Some(payload) = payload else { continue };
        stats.recv_bytes[q] = payload.len();
        if payload.is_empty() {
            continue;
        }
        let rows = part.recv_slots[q].len();
        let block = EncodedBlock {
            bytes: payload,
            rows,
            dim,
        };
        let (decoded, secs) =
            // lint:allow(no-panic): peers run this same codec; a malformed block is a codec bug, not runtime state
            comm::timing::measure(|| decode_block(&block).expect("peer sent a well-formed block"));
        stats.quant_cpu_seconds += secs;
        stats.quant_ops += (rows * dim) as f64 * DECODE_OPS_PER_ELEMENT;
        for (r, &slot) in part.recv_slots[q].iter().enumerate() {
            halo.row_mut(slot as usize).copy_from_slice(decoded.row(r));
        }
    }
    (halo, stats)
}

/// Gathers the halo-gradient rows destined for peer `q` (aligned with
/// `recv_slots[q]`) out of an extended gradient matrix.
fn gather_halo_grads(part: &DevicePartition, grad_ext: &Matrix, q: usize) -> Matrix {
    let idx: Vec<usize> = part.recv_slots[q]
        .iter()
        .map(|&slot| part.num_local() + slot as usize)
        .collect();
    grad_ext.gather_rows(&idx)
}

/// Accumulates gradient rows received from peer `q` (aligned with
/// `send_sets[q]`) into the local gradient matrix.
fn scatter_grads(part: &DevicePartition, grad_local: &mut Matrix, q: usize, m: &Matrix) {
    let idx: Vec<usize> = part.send_sets[q].iter().map(|&li| li as usize).collect();
    grad_local.scatter_add_rows(&idx, m);
}

/// Full-precision backward exchange: ships the halo rows of `grad_ext` back
/// to their owners and accumulates the rows received from peers into
/// `grad_local` (the embedding-gradient "error" flow of the backward pass).
///
/// # Panics
///
/// Panics if matrix shapes disagree with the partition.
pub fn exchange_backward_fp32(
    dev: &mut DeviceHandle,
    part: &DevicePartition,
    grad_ext: &Matrix,
    grad_local: &mut Matrix,
) -> ExchangeStats {
    let n = part.num_parts;
    let dim = grad_ext.cols();
    assert_eq!(grad_ext.rows(), part.num_ext(), "grad_ext shape");
    assert_eq!(grad_local.rows(), part.num_local(), "grad_local shape");
    let mut stats = ExchangeStats::new(n);
    let mut payloads: Vec<Bytes> = Vec::with_capacity(n);
    for q in 0..n {
        if q == part.rank || part.recv_slots[q].is_empty() {
            payloads.push(Bytes::new());
            continue;
        }
        let msgs = gather_halo_grads(part, grad_ext, q);
        let b = matrix_to_bytes(&msgs);
        stats.sent_bytes[q] = b.len();
        payloads.push(b);
    }
    let received = dev.ring_all2all(payloads);
    for (q, payload) in received.into_iter().enumerate() {
        let Some(payload) = payload else { continue };
        stats.recv_bytes[q] = payload.len();
        if payload.is_empty() {
            continue;
        }
        let rows = part.send_sets[q].len();
        let m = bytes_to_matrix(&payload, rows, dim);
        scatter_grads(part, grad_local, q, &m);
    }
    stats
}

/// Quantized backward exchange; `widths[q]` is aligned with
/// `part.recv_slots[q]` (the messages we send back to owner `q`).
///
/// # Panics
///
/// Panics if shapes or width vectors disagree with the partition.
pub fn exchange_backward_quant(
    dev: &mut DeviceHandle,
    part: &DevicePartition,
    grad_ext: &Matrix,
    grad_local: &mut Matrix,
    widths: &[Vec<BitWidth>],
    rng: &mut Rng,
) -> ExchangeStats {
    exchange_backward_quant_ef(dev, part, grad_ext, grad_local, widths, None, rng)
}

/// [`exchange_backward_quant`] with optional error feedback (see
/// [`exchange_forward_quant_ef`]).
///
/// # Panics
///
/// Panics if shapes, widths or residuals disagree with the partition.
pub fn exchange_backward_quant_ef(
    dev: &mut DeviceHandle,
    part: &DevicePartition,
    grad_ext: &Matrix,
    grad_local: &mut Matrix,
    widths: &[Vec<BitWidth>],
    mut residuals: Option<&mut Vec<Matrix>>,
    rng: &mut Rng,
) -> ExchangeStats {
    let n = part.num_parts;
    let dim = grad_ext.cols();
    assert_eq!(grad_ext.rows(), part.num_ext(), "grad_ext shape");
    let mut stats = ExchangeStats::new(n);
    let mut payloads: Vec<Bytes> = Vec::with_capacity(n);
    for q in 0..n {
        if q == part.rank || part.recv_slots[q].is_empty() {
            payloads.push(Bytes::new());
            continue;
        }
        assert_eq!(
            widths[q].len(),
            part.recv_slots[q].len(),
            "one width per gradient message to peer {q}"
        );
        let mut msgs = gather_halo_grads(part, grad_ext, q);
        if let Some(res) = residuals.as_deref_mut() {
            assert_eq!(res[q].shape(), msgs.shape(), "residual shape for peer {q}");
            msgs.add_assign(&res[q]);
        }
        let ((block, enc_stats), secs) =
            comm::timing::measure(|| encode_block_with_stats(&msgs, &widths[q], rng));
        stats.quant_cpu_seconds += secs;
        stats.quant_ops += msgs.len() as f64 * ENCODE_OPS_PER_ELEMENT;
        stats.encode_stats.merge(&enc_stats);
        if let Some(res) = residuals.as_deref_mut() {
            let (decoded, dsecs) =
                // lint:allow(no-panic): decoding the block this function encoded two lines up
                comm::timing::measure(|| decode_block(&block).expect("own block decodes"));
            stats.quant_cpu_seconds += dsecs;
            stats.quant_ops += msgs.len() as f64 * (DECODE_OPS_PER_ELEMENT + 2.0);
            let mut r = msgs;
            r.sub_assign(&decoded);
            res[q] = r;
        }
        stats.sent_bytes[q] = block.wire_len();
        payloads.push(block.bytes);
    }
    let received = dev.ring_all2all(payloads);
    for (q, payload) in received.into_iter().enumerate() {
        let Some(payload) = payload else { continue };
        stats.recv_bytes[q] = payload.len();
        if payload.is_empty() {
            continue;
        }
        let rows = part.send_sets[q].len();
        let block = EncodedBlock {
            bytes: payload,
            rows,
            dim,
        };
        let (decoded, secs) =
            // lint:allow(no-panic): peers run this same codec; a malformed block is a codec bug, not runtime state
            comm::timing::measure(|| decode_block(&block).expect("peer sent a well-formed block"));
        stats.quant_cpu_seconds += secs;
        stats.quant_ops += (rows * dim) as f64 * DECODE_OPS_PER_ELEMENT;
        scatter_grads(part, grad_local, q, &decoded);
    }
    stats
}

/// Backward counterpart of [`exchange_forward_quant_streamed`]: ships halo
/// gradients back to their owners with the quantize+send pipeline.
/// `widths[q]` aligns with `part.recv_slots[q]`.
///
/// # Panics
///
/// Panics if shapes or width vectors disagree with the partition.
pub fn exchange_backward_quant_streamed(
    dev: &mut DeviceHandle,
    part: &DevicePartition,
    grad_ext: &Matrix,
    grad_local: &mut Matrix,
    widths: &[Vec<BitWidth>],
    rng: &mut Rng,
    cost: &CostModel,
) -> ExchangeStats {
    let n = part.num_parts;
    let dim = grad_ext.cols();
    assert_eq!(grad_ext.rows(), part.num_ext(), "grad_ext shape");
    let mut stats = ExchangeStats::new(n);
    let mut payloads: Vec<Bytes> = Vec::with_capacity(n);
    for q in 0..n {
        if q == part.rank || part.recv_slots[q].is_empty() {
            payloads.push(Bytes::new());
            continue;
        }
        assert_eq!(
            widths[q].len(),
            part.recv_slots[q].len(),
            "one width per gradient message to peer {q}"
        );
        let msgs = gather_halo_grads(part, grad_ext, q);
        let ((block, enc_stats, profile), secs) =
            comm::timing::measure(|| encode_block_streamed(&msgs, &widths[q], rng));
        stats.quant_cpu_seconds += secs;
        stats.encode_stats.merge(&enc_stats);
        stats.streamed_send[q] = streamed_send_seconds(cost, part.rank, q, &profile);
        stats.sent_bytes[q] = block.wire_len();
        payloads.push(block.bytes);
    }
    let received = dev.ring_all2all(payloads);
    for (q, payload) in received.into_iter().enumerate() {
        let Some(payload) = payload else { continue };
        stats.recv_bytes[q] = payload.len();
        if payload.is_empty() {
            continue;
        }
        let rows = part.send_sets[q].len();
        let block = EncodedBlock {
            bytes: payload,
            rows,
            dim,
        };
        let (decoded, secs) =
            // lint:allow(no-panic): peers run this same codec; a malformed block is a codec bug, not runtime state
            comm::timing::measure(|| decode_block(&block).expect("peer sent a well-formed block"));
        stats.quant_cpu_seconds += secs;
        stats.quant_ops += (rows * dim) as f64 * DECODE_OPS_PER_ELEMENT;
        scatter_grads(part, grad_local, q, &decoded);
    }
    stats
}

/// Quantized forward exchange over the *group-major* wire format (the
/// paper's exact serialization: messages grouped by bit-width, one
/// contiguous code stream per group, no per-row width bytes). Requires the
/// receive-side width tables the Adaptive Bit-width Assigner scatters
/// (`recv_widths[src]` aligned with `part.recv_slots[src]`).
///
/// # Panics
///
/// Panics if width tables disagree with the partition.
pub fn exchange_forward_grouped(
    dev: &mut DeviceHandle,
    part: &DevicePartition,
    x: &Matrix,
    send_widths: &[Vec<BitWidth>],
    recv_widths: &[Vec<BitWidth>],
    rng: &mut Rng,
) -> (Matrix, ExchangeStats) {
    let n = part.num_parts;
    let dim = x.cols();
    let mut stats = ExchangeStats::new(n);
    let mut payloads: Vec<Bytes> = Vec::with_capacity(n);
    for q in 0..n {
        if q == part.rank || part.send_sets[q].is_empty() {
            payloads.push(Bytes::new());
            continue;
        }
        assert_eq!(
            send_widths[q].len(),
            part.send_sets[q].len(),
            "one width per message to peer {q}"
        );
        let msgs = part.gather_send_rows(x, q);
        let block = quant::encode_block_grouped(&msgs, &send_widths[q], rng);
        stats.quant_ops += msgs.len() as f64 * ENCODE_OPS_PER_ELEMENT;
        stats.sent_bytes[q] = block.wire_len();
        payloads.push(block.bytes);
    }
    let received = dev.ring_all2all(payloads);
    let mut halo = Matrix::zeros(part.num_halo(), dim);
    for (q, payload) in received.into_iter().enumerate() {
        let Some(payload) = payload else { continue };
        stats.recv_bytes[q] = payload.len();
        if payload.is_empty() {
            continue;
        }
        let rows = part.recv_slots[q].len();
        assert_eq!(
            recv_widths[q].len(),
            rows,
            "one recv width per message from peer {q}"
        );
        let block = EncodedBlock {
            bytes: payload,
            rows,
            dim,
        };
        let decoded = quant::decode_block_grouped(&block, &recv_widths[q])
            // lint:allow(no-panic): peers run this same codec; a malformed block is a codec bug, not runtime state
            .expect("peer sent a well-formed grouped block");
        stats.quant_ops += (rows * dim) as f64 * DECODE_OPS_PER_ELEMENT;
        for (r, &slot) in part.recv_slots[q].iter().enumerate() {
            halo.row_mut(slot as usize).copy_from_slice(decoded.row(r));
        }
    }
    (halo, stats)
}

/// Backward counterpart of [`exchange_forward_grouped`]: ships halo
/// gradients back to owners in the group-major format. `send_widths[q]`
/// aligns with `part.recv_slots[q]`; `recv_widths[q]` aligns with
/// `part.send_sets[q]`.
///
/// # Panics
///
/// Panics if shapes or width tables disagree with the partition.
pub fn exchange_backward_grouped(
    dev: &mut DeviceHandle,
    part: &DevicePartition,
    grad_ext: &Matrix,
    grad_local: &mut Matrix,
    send_widths: &[Vec<BitWidth>],
    recv_widths: &[Vec<BitWidth>],
    rng: &mut Rng,
) -> ExchangeStats {
    let n = part.num_parts;
    let dim = grad_ext.cols();
    assert_eq!(grad_ext.rows(), part.num_ext(), "grad_ext shape");
    let mut stats = ExchangeStats::new(n);
    let mut payloads: Vec<Bytes> = Vec::with_capacity(n);
    for q in 0..n {
        if q == part.rank || part.recv_slots[q].is_empty() {
            payloads.push(Bytes::new());
            continue;
        }
        assert_eq!(
            send_widths[q].len(),
            part.recv_slots[q].len(),
            "one width per gradient message to peer {q}"
        );
        let msgs = gather_halo_grads(part, grad_ext, q);
        let block = quant::encode_block_grouped(&msgs, &send_widths[q], rng);
        stats.quant_ops += msgs.len() as f64 * ENCODE_OPS_PER_ELEMENT;
        stats.sent_bytes[q] = block.wire_len();
        payloads.push(block.bytes);
    }
    let received = dev.ring_all2all(payloads);
    for (q, payload) in received.into_iter().enumerate() {
        let Some(payload) = payload else { continue };
        stats.recv_bytes[q] = payload.len();
        if payload.is_empty() {
            continue;
        }
        let rows = part.send_sets[q].len();
        assert_eq!(
            recv_widths[q].len(),
            rows,
            "one recv width per gradient message from peer {q}"
        );
        let block = EncodedBlock {
            bytes: payload,
            rows,
            dim,
        };
        let decoded = quant::decode_block_grouped(&block, &recv_widths[q])
            // lint:allow(no-panic): peers run this same codec; a malformed block is a codec bug, not runtime state
            .expect("peer sent a well-formed grouped block");
        stats.quant_ops += (rows * dim) as f64 * DECODE_OPS_PER_ELEMENT;
        scatter_grads(part, grad_local, q, &decoded);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_bytes_roundtrip() {
        let m = Matrix::from_rows(&[&[1.5, -2.25], &[0.0, 1e-7]]);
        let b = matrix_to_bytes(&m);
        assert_eq!(b.len(), 16);
        assert_eq!(bytes_to_matrix(&b, 2, 2), m);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = ExchangeStats {
            sent_bytes: vec![1, 2],
            recv_bytes: vec![3, 4],
            quant_cpu_seconds: 0.5,
            quant_ops: 100.0,
            encode_stats: quant::EncodeStats::default(),
            streamed_send: vec![0.0; 2],
        };
        let b = ExchangeStats {
            sent_bytes: vec![10, 20],
            recv_bytes: vec![30, 40],
            quant_cpu_seconds: 0.25,
            quant_ops: 50.0,
            encode_stats: quant::EncodeStats::default(),
            streamed_send: vec![0.5, 0.25],
        };
        a.merge(&b);
        assert_eq!(a.sent_bytes, vec![11, 22]);
        assert_eq!(a.recv_bytes, vec![33, 44]);
        assert!((a.quant_cpu_seconds - 0.75).abs() < 1e-12);
        assert_eq!(a.quant_ops, 150.0);
        assert_eq!(a.total_sent(), 33);
        assert_eq!(a.streamed_send, vec![0.5, 0.25]);
    }

    #[test]
    fn ring_seconds_counts_rounds() {
        let cost = CostModel::homogeneous(3, 1e6, 0.0);
        let stats = ExchangeStats {
            sent_bytes: vec![0, 1000, 2000],
            recv_bytes: vec![0, 500, 4000],
            quant_cpu_seconds: 0.0,
            quant_ops: 0.0,
            encode_stats: quant::EncodeStats::default(),
            streamed_send: vec![0.0; 3],
        };
        // rank 0: round 1 -> send to 1 (1ms) / recv from 2 (4ms) => 4ms;
        //         round 2 -> send to 2 (2ms) / recv from 1 (0.5ms) => 2ms.
        let t = stats.ring_seconds(&cost, 0);
        assert!((t - 6e-3).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn streamed_send_bounds_hold() {
        // Pipelined time is sandwiched between the bare transfer and the
        // serial encode + transfer total, for every chunking.
        let cost = CostModel::homogeneous(2, 1e6, 5e-6);
        let profile = StreamProfile {
            chunks: vec![
                quant::StreamChunk {
                    rows: 512,
                    elements: 512 * 64,
                    wire_bytes: 9000,
                },
                quant::StreamChunk {
                    rows: 512,
                    elements: 512 * 64,
                    wire_bytes: 8992,
                },
            ],
        };
        let streamed = streamed_send_seconds(&cost, 0, 1, &profile);
        let total_bytes = profile.total_bytes();
        let bare = cost.transfer_time(0, 1, total_bytes);
        let encode = cost.ops_time_for(0, profile.total_elements() as f64 * ENCODE_OPS_PER_ELEMENT);
        assert!(streamed >= bare, "streamed {streamed} < transfer {bare}");
        assert!(
            streamed <= bare + encode + 1e-12,
            "streamed {streamed} > serial {}",
            bare + encode
        );
    }

    #[test]
    fn streamed_send_single_chunk_is_serial() {
        // One chunk cannot overlap anything: encode then transfer.
        let cost = CostModel::homogeneous(2, 1e6, 5e-6);
        let profile = StreamProfile {
            chunks: vec![quant::StreamChunk {
                rows: 16,
                elements: 16 * 8,
                wire_bytes: 200,
            }],
        };
        let streamed = streamed_send_seconds(&cost, 0, 1, &profile);
        let serial =
            cost.ops_time_for(0, 128.0 * ENCODE_OPS_PER_ELEMENT) + cost.transfer_time(0, 1, 200);
        assert!((streamed - serial).abs() < 1e-15, "{streamed} vs {serial}");
    }

    #[test]
    fn ring_seconds_uses_streamed_send_when_larger() {
        let cost = CostModel::homogeneous(2, 1e6, 0.0);
        let mut stats = ExchangeStats::new(2);
        stats.sent_bytes[1] = 1000; // 1 ms bare transfer
        stats.recv_bytes[1] = 500;
        let bare = stats.ring_seconds(&cost, 0);
        assert!((bare - 1e-3).abs() < 1e-12);
        stats.streamed_send[1] = 4e-3; // pipeline stalled on encode
        let streamed = stats.ring_seconds(&cost, 0);
        assert!((streamed - 4e-3).abs() < 1e-12);
    }

    #[test]
    fn sequential_seconds_serializes_unicast_copies() {
        let cost = CostModel::homogeneous(3, 1e6, 0.0);
        let stats = ExchangeStats {
            sent_bytes: vec![0, 3000, 1000],
            recv_bytes: vec![0, 2000, 2000],
            quant_cpu_seconds: 0.0,
            quant_ops: 0.0,
            encode_stats: quant::EncodeStats::default(),
            streamed_send: vec![0.0; 3],
        };
        // rank 0's view: own turn = 3ms + 1ms = 4ms; turn 1 broadcast 2000B
        // to 2 peers = 4ms; turn 2 likewise = 4ms.
        let t = stats.sequential_seconds(&cost, 0);
        assert!((t - 12e-3).abs() < 1e-9, "t = {t}");
    }
}
