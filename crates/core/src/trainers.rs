//! Device-side training loops for AdaQP and every baseline.
//!
//! One [`DeviceTrainer`] runs on each simulated device (thread). All methods
//! share the same distributed forward/backward engine — per layer: halo
//! exchange, split central/marginal aggregation, dense transform — and
//! differ only in *how halo data is obtained* (fresh fp32, quantized, stale
//! cache) and how their epoch time composes (see
//! [`crate::metrics::epoch_time`]).

use crate::assigner::{reassign, AssignMode, Trace, WidthAssignment};
use crate::config::{Method, TrainingConfig};
use crate::decompose::{DevicePartition, LocalLabels};
use crate::exchange::{
    exchange_backward_fp32, exchange_backward_grouped, exchange_backward_quant_ef,
    exchange_forward_fp32, exchange_forward_grouped, exchange_forward_quant_ef,
    exchange_forward_quant_streamed, ExchangeStats,
};
use crate::metrics::{DeviceEpochRecord, MetricParts};
use comm::telemetry::{Event, EventDetail, EventKind};
use comm::{CostModel, DeviceHandle, TimeBreakdown, TimeCategory};
use gnn::{Adam, Gnn};
use quant::BitWidth;
use tensor::{
    sigmoid_bce_backward_weighted, sigmoid_bce_loss_weighted, softmax_cross_entropy_backward,
    softmax_cross_entropy_loss, Matrix, Rng,
};

/// The per-device training driver.
pub struct DeviceTrainer<'a> {
    dev: DeviceHandle,
    part: &'a DevicePartition,
    cfg: &'a TrainingConfig,
    method: Method,
    cost: CostModel,
    model: Gnn,
    adam: Adam,
    rng: Rng,
    dims: Vec<usize>,
    assignment: WidthAssignment,
    trace: Trace,
    /// Per-layer stale halo caches (PipeGCN / SANCUS).
    halo_cache: Vec<Matrix>,
    /// Per-layer one-epoch-stale remote gradient contributions (PipeGCN).
    stale_grads: Vec<Matrix>,
    /// SANCUS: snapshot of local embeddings at each layer's last broadcast,
    /// for the staleness check.
    sancus_snapshot: Vec<Option<Matrix>>,
    /// SANCUS: epoch of each layer's last broadcast.
    sancus_last: Vec<usize>,
    /// Error-feedback residuals for forward messages, `[layer][peer]`
    /// (empty unless `cfg.error_feedback`).
    ef_fwd: Vec<Vec<Matrix>>,
    /// Error-feedback residuals for backward messages, `[layer][peer]`.
    ef_bwd: Vec<Vec<Matrix>>,
    central_frac: f64,
    /// Epoch currently being trained, tagged onto profiled phase charges.
    cur_epoch: usize,
}

/// SANCUS broadcasts again when local embeddings drift more than this
/// relative Frobenius distance from the last broadcast snapshot.
const SANCUS_DRIFT_THRESHOLD: f32 = 0.25;

/// The single bit-width shared by every message group in a per-peer
/// assignment, or `None` when groups mix widths (adaptive assignments).
fn uniform_bits(widths: &[Vec<BitWidth>]) -> Option<u8> {
    let mut it = widths.iter().flatten();
    let first = *it.next()?;
    if it.all(|w| *w == first) {
        Some(first.bits() as u8)
    } else {
        None
    }
}

impl<'a> DeviceTrainer<'a> {
    /// Builds the trainer; model initialization is seeded identically on
    /// every rank so replicas start (and stay, via gradient allreduce) in
    /// sync.
    pub fn new(
        mut dev: DeviceHandle,
        part: &'a DevicePartition,
        cfg: &'a TrainingConfig,
        method: Method,
        cost: CostModel,
        seed: u64,
    ) -> Self {
        if cfg.telemetry {
            dev.enable_telemetry();
        }
        if cfg.metrics {
            dev.enable_metrics();
        }
        if cfg.profile {
            dev.enable_profile();
        }
        let dims = cfg.dims(part.features.cols(), part.global.num_classes);
        let mut init_rng = Rng::seed_from(seed);
        let model = Gnn::with_dropout(cfg.conv_kind(), &dims, cfg.dropout, &mut init_rng);
        let adam = Adam::new(model.param_count(), cfg.lr);
        // Per-device stream for dropout / stochastic rounding.
        let rng = Rng::seed_from(seed ^ (0x9E37_79B9 + dev.rank() as u64));
        let num_layers = dims.len() - 1;
        let layer_in_dims: Vec<usize> = dims[..num_layers].to_vec();
        let trace = Trace::new(part, &layer_in_dims);
        let assignment = WidthAssignment::fixed(part, num_layers, BitWidth::B8);
        let halo_cache = layer_in_dims
            .iter()
            .map(|&d| Matrix::zeros(part.num_halo(), d))
            .collect();
        let stale_grads = layer_in_dims
            .iter()
            .map(|&d| Matrix::zeros(part.num_local(), d))
            .collect();

        let central_frac = if part.num_local() == 0 {
            0.0
        } else {
            part.central.len() as f64 / part.num_local() as f64
        };
        // Error-feedback residual buffers (zero-sized when disabled).
        let (ef_fwd, ef_bwd) = if cfg.error_feedback {
            let fwd = layer_in_dims
                .iter()
                .map(|&d| {
                    part.send_sets
                        .iter()
                        .map(|s| Matrix::zeros(s.len(), d))
                        .collect()
                })
                .collect();
            let bwd = layer_in_dims
                .iter()
                .map(|&d| {
                    part.recv_slots
                        .iter()
                        .map(|s| Matrix::zeros(s.len(), d))
                        .collect()
                })
                .collect();
            (fwd, bwd)
        } else {
            (Vec::new(), Vec::new())
        };
        Self {
            dev,
            part,
            cfg,
            method,
            cost,
            model,
            adam,
            rng,
            dims,
            assignment,
            trace,
            halo_cache,
            stale_grads,
            sancus_snapshot: vec![None; num_layers],
            sancus_last: vec![0; num_layers],
            ef_fwd,
            ef_bwd,
            central_frac,
            cur_epoch: 0,
        }
    }

    /// Charges `secs` to `tb`'s `cat` bucket and mirrors the charge to the
    /// scheduler clock ([`DeviceHandle::advance_phase`], a no-op unless
    /// profiling is on), so the flight recorder logs exactly the charges
    /// the [`TimeBreakdown`] accumulates — in the same order, with the same
    /// values.
    fn charge(&mut self, tb: &mut TimeBreakdown, cat: TimeCategory, secs: f64) {
        tb.charge(cat, secs);
        self.dev.advance_phase(cat, self.cur_epoch, secs);
    }

    fn num_layers(&self) -> usize {
        self.dims.len() - 1
    }

    /// Runs all configured epochs and returns per-epoch records, the
    /// telemetry events recorded along the way (empty unless
    /// `cfg.telemetry`), and the device's metric registry (`None` unless
    /// `cfg.metrics`).
    pub fn run(mut self) -> (Vec<DeviceEpochRecord>, Vec<Event>, Option<obs::Registry>) {
        let records = (0..self.cfg.epochs).map(|e| self.run_epoch(e)).collect();
        let events = self.dev.telemetry_mut().take_events();
        let metrics = self.dev.take_metrics();
        (records, events, metrics)
    }

    /// Whether this epoch's messages are traced and followed by a
    /// reassignment (AdaQP/Uniform only).
    fn is_assign_epoch(&self, epoch: usize) -> bool {
        matches!(self.method, Method::AdaQp | Method::AdaQpUniform)
            && (epoch == 0 || (epoch + 1).is_multiple_of(self.cfg.reassign_period.max(1)))
    }

    /// One training epoch: forward, loss, backward, allreduce, step,
    /// optional reassignment, evaluation.
    pub fn run_epoch(&mut self, epoch: usize) -> DeviceEpochRecord {
        self.cur_epoch = epoch;
        let mut tb = TimeBreakdown::new();
        let mut bytes = 0usize;
        let trace_now = self.is_assign_epoch(epoch);
        self.model.zero_grads();
        self.dev.telemetry_mut().start_epoch(epoch as u32);

        // ---- Forward ----
        let num_layers = self.num_layers();
        let mut h = self.part.features.clone();
        let mut layer_inputs: Vec<Matrix> = Vec::with_capacity(num_layers);
        for l in 0..num_layers {
            self.dev.telemetry_mut().set_layer(Some(l as u32));
            if trace_now {
                self.trace.record_fwd(self.part, l, &h);
            }
            let halo = self.forward_halo(l, &h, epoch, &mut tb, &mut bytes);
            let xe = Matrix::vstack(&[&h, &halo]);
            let z = self.aggregate_split(&xe, &mut tb);
            layer_inputs.push(h);
            let self_path = self.model.kind().uses_self_path();
            // lint:allow(no-panic): the push is two lines up; last() cannot be None
            let input_ref = layer_inputs.last().expect("just pushed");
            let out = {
                let layer = &mut self.model.layers_mut()[l];
                layer.forward_dense(&z, self_path.then_some(input_ref), true, &mut self.rng)
            };
            let ops = self.dense_ops(self.part.num_local(), l, 1.0);
            self.charge_split_ops(&mut tb, ops);
            h = out;
        }
        let logits = h;
        self.dev.telemetry_mut().set_layer(None);

        // ---- Loss ----
        let (loss_sum, grad_logits) = self.loss_and_grad(&logits);

        // ---- Backward ----
        let mut grad_h = grad_logits;
        for l in (0..num_layers).rev() {
            self.dev.telemetry_mut().set_layer(Some(l as u32));
            let (grad_agg, grad_self) = {
                let layer = &mut self.model.layers_mut()[l];
                layer.backward_dense(&grad_h)
            };
            self.charge_split_ops(&mut tb, self.dense_ops(self.part.num_local(), l, 2.0));
            if l == 0 {
                // Features are not trainable: no need to propagate further
                // or exchange feature gradients.
                break;
            }
            let grad_ext = self.part.agg.backward(&grad_agg);
            let agg_ops = self.part.agg.num_entries() as f64 * self.dims[l] as f64 * 2.0;
            self.charge_split_ops(&mut tb, agg_ops);
            if trace_now {
                self.trace.record_bwd(self.part, l, &grad_ext);
            }
            let local_idx: Vec<usize> = (0..self.part.num_local()).collect();
            let mut grad_local = grad_ext.gather_rows(&local_idx);
            if let Some(gs) = grad_self {
                grad_local.add_assign(&gs);
            }
            self.backward_exchange(l, &grad_ext, &mut grad_local, epoch, &mut tb, &mut bytes);
            grad_h = grad_local;
        }

        // ---- Gradient allreduce + optimizer step ----
        self.dev.telemetry_mut().set_layer(None);
        let mut grads = self.model.grads_flat();
        self.dev.allreduce_sum_f32(&mut grads);
        let allreduce_secs = self.allreduce_seconds(grads.len() * 4);
        self.charge(&mut tb, TimeCategory::Comm, allreduce_secs);
        self.dev.telemetry_mut().record_detail(
            EventKind::AllReduce,
            allreduce_secs,
            EventDetail {
                peer: None,
                bytes: (grads.len() * 4) as u64,
                width_bits: Some(32),
                ..EventDetail::default()
            },
        );
        let grad_norm = grads
            .iter()
            .map(|&g| f64::from(g) * f64::from(g))
            .sum::<f64>()
            .sqrt();
        let mut params = self.model.params_flat();
        self.adam.step(&mut params, &grads);
        // Adam: ~10 scalar ops per parameter.
        let adam_secs = self
            .cost
            .ops_time_for(self.part.rank, params.len() as f64 * 10.0);
        self.charge(&mut tb, TimeCategory::MarginalComp, adam_secs);
        self.dev
            .telemetry_mut()
            .record(EventKind::MarginalCompute, adam_secs);
        self.model.set_params_flat(&params);

        // ---- Periodic bit-width reassignment ----
        if self.is_assign_epoch(epoch) {
            let mode = if self.method == Method::AdaQp {
                AssignMode::Adaptive
            } else {
                AssignMode::UniformRandom
            };
            let (assignment, solve) = reassign(
                &mut self.dev,
                self.part,
                &self.cost,
                &self.trace,
                self.cfg,
                mode,
                &mut self.rng,
            );
            self.assignment = assignment;
            self.charge(&mut tb, TimeCategory::Solve, solve.secs);
            self.dev
                .telemetry_mut()
                .record(EventKind::AssignerSolve, solve.secs);
            // SolveStats are identical on every rank (the master broadcasts
            // them); record on the master only so merging per-rank
            // registries does not multiply the counts.
            if self.part.rank == 0 {
                if let Some(reg) = self.dev.metrics_mut() {
                    // Iteration counts stay far below 2^53, so the f64 counter is exact.
                    reg.counter_add(
                        "adaqp_solver_iterations_total",
                        &[],
                        solve.iterations as f64,
                    );
                    // Problem counts stay far below 2^53, so the f64 counter is exact.
                    reg.counter_add("adaqp_solver_problems_total", &[], solve.problems as f64);
                    reg.gauge_set("adaqp_solver_objective_sum", &[], solve.objective_sum);
                }
            }
        }

        // ---- Evaluation (not charged to simulated time) ----
        let metric = self.evaluate();

        DeviceEpochRecord {
            breakdown: tb,
            loss_sum,
            metric,
            bytes_sent: bytes,
            grad_norm,
        }
    }

    /// Produces the halo matrix for layer `l`'s aggregation, charging
    /// communication/quantization time according to the method.
    fn forward_halo(
        &mut self,
        l: usize,
        h: &Matrix,
        epoch: usize,
        tb: &mut TimeBreakdown,
        bytes: &mut usize,
    ) -> Matrix {
        match self.method {
            Method::Vanilla => {
                let (halo, stats) = exchange_forward_fp32(&mut self.dev, self.part, h);
                self.charge_ring(tb, bytes, &stats, Some(32));
                halo
            }
            Method::AdaQp | Method::AdaQpUniform => {
                if epoch == 0 {
                    // First epoch runs full precision while tracing.
                    let (halo, stats) = exchange_forward_fp32(&mut self.dev, self.part, h);
                    self.charge_ring(tb, bytes, &stats, Some(32));
                    halo
                } else if self.cfg.grouped_wire && self.method == Method::AdaQp {
                    let send = self.assignment.fwd[l].clone();
                    let recv = self.assignment.fwd_recv[l].clone();
                    let (halo, stats) = exchange_forward_grouped(
                        &mut self.dev,
                        self.part,
                        h,
                        &send,
                        &recv,
                        &mut self.rng,
                    );
                    self.charge_ring(tb, bytes, &stats, uniform_bits(&send));
                    halo
                } else if self.cfg.stream_quant {
                    // Pipelined quantize+send: same bytes and RNG stream as
                    // the plain quantized exchange, but encode time rides
                    // inside the per-destination send pipeline.
                    let widths = self.assignment.fwd[l].clone();
                    let (halo, stats) = exchange_forward_quant_streamed(
                        &mut self.dev,
                        self.part,
                        h,
                        &widths,
                        &mut self.rng,
                        &self.cost,
                    );
                    self.charge_ring(tb, bytes, &stats, uniform_bits(&widths));
                    halo
                } else {
                    let widths = self.assignment.fwd[l].clone();
                    let residuals = if self.cfg.error_feedback {
                        Some(&mut self.ef_fwd[l])
                    } else {
                        None
                    };
                    let (halo, stats) = exchange_forward_quant_ef(
                        &mut self.dev,
                        self.part,
                        h,
                        &widths,
                        residuals,
                        &mut self.rng,
                    );
                    self.charge_ring(tb, bytes, &stats, uniform_bits(&widths));
                    halo
                }
            }
            Method::PipeGcn => {
                // Use last epoch's halo; refresh concurrently (pipelined).
                let (fresh, stats) = exchange_forward_fp32(&mut self.dev, self.part, h);
                self.charge_ring(tb, bytes, &stats, Some(32));
                if epoch == 0 {
                    self.halo_cache[l] = fresh.clone();
                    fresh
                } else {
                    std::mem::replace(&mut self.halo_cache[l], fresh)
                }
            }
            Method::Sancus => self.sancus_halo(l, h, epoch, tb, bytes),
        }
    }

    /// SANCUS's staleness-aware skip-broadcast (Peng et al. 2022): each
    /// device broadcasts its *whole partition's* embeddings sequentially —
    /// SANCUS is decentralized, every worker keeps historical embeddings for
    /// the full graph — but skips its turn while its embeddings have drifted
    /// little since the last broadcast (bounded by `sancus_staleness`
    /// epochs). Functionally only the halo rows matter, so only those move;
    /// the byte/time accounting uses the full-partition broadcast volume
    /// over the serialized sequential schedule the paper critiques.
    fn sancus_halo(
        &mut self,
        l: usize,
        h: &Matrix,
        epoch: usize,
        tb: &mut TimeBreakdown,
        bytes: &mut usize,
    ) -> Matrix {
        let dim = h.cols();
        let n = self.part.num_parts;
        // Sender-side refresh decision.
        let drifted = match &self.sancus_snapshot[l] {
            None => true,
            Some(snap) => {
                let mut diff = h.clone();
                diff.sub_assign(snap);
                diff.frobenius_norm() > SANCUS_DRIFT_THRESHOLD * (snap.frobenius_norm() + 1e-12)
            }
        };
        let stale_for = epoch.saturating_sub(self.sancus_last[l]);
        let broadcast = epoch == 0 || drifted || stale_for >= self.cfg.sancus_staleness.max(1);

        // Move boundary rows (or nothing) to every peer.
        let mut payloads: Vec<bytes::Bytes> = Vec::with_capacity(n);
        for q in 0..n {
            if !broadcast || q == self.part.rank || self.part.send_sets[q].is_empty() {
                payloads.push(bytes::Bytes::new());
            } else {
                let msgs = self.part.gather_send_rows(h, q);
                payloads.push(crate::exchange::matrix_to_bytes(&msgs));
            }
        }
        let received = self.dev.ring_all2all(payloads);
        let mut halo = std::mem::replace(&mut self.halo_cache[l], Matrix::zeros(0, 0));
        let mut stats = ExchangeStats {
            sent_bytes: vec![0; n],
            recv_bytes: vec![0; n],
            quant_cpu_seconds: 0.0,
            quant_ops: 0.0,
            encode_stats: quant::EncodeStats::default(),
            streamed_send: vec![0.0; n],
        };
        if broadcast {
            self.sancus_snapshot[l] = Some(h.clone());
            self.sancus_last[l] = epoch;
            for q in 0..n {
                if q != self.part.rank {
                    // Full-partition broadcast volume, not just the halo.
                    stats.sent_bytes[q] = self.part.num_local() * dim * 4;
                }
            }
        }
        for (q, payload) in received.into_iter().enumerate() {
            let Some(payload) = payload else { continue };
            if payload.is_empty() {
                continue; // peer skipped its broadcast: keep stale rows
            }
            stats.recv_bytes[q] = self.part.part_sizes[q] * dim * 4;
            let rows = self.part.recv_slots[q].len();
            let m = crate::exchange::bytes_to_matrix(&payload, rows, dim);
            for (r, &slot) in self.part.recv_slots[q].iter().enumerate() {
                halo.row_mut(slot as usize).copy_from_slice(m.row(r));
            }
        }
        let comm_secs = stats.sequential_seconds(&self.cost, self.part.rank);
        self.charge(tb, TimeCategory::Comm, comm_secs);
        *bytes += stats.total_sent();
        if self.dev.telemetry().is_enabled() {
            self.emit_comm_events(&stats.sent_bytes, &stats.recv_bytes, comm_secs, Some(32));
        }
        self.halo_cache[l] = halo.clone();
        halo
    }

    /// Backward halo-gradient exchange per method.
    fn backward_exchange(
        &mut self,
        l: usize,
        grad_ext: &Matrix,
        grad_local: &mut Matrix,
        epoch: usize,
        tb: &mut TimeBreakdown,
        bytes: &mut usize,
    ) {
        match self.method {
            Method::Vanilla => {
                let stats = exchange_backward_fp32(&mut self.dev, self.part, grad_ext, grad_local);
                self.charge_ring(tb, bytes, &stats, Some(32));
            }
            Method::AdaQp | Method::AdaQpUniform => {
                if epoch == 0 {
                    let stats =
                        exchange_backward_fp32(&mut self.dev, self.part, grad_ext, grad_local);
                    self.charge_ring(tb, bytes, &stats, Some(32));
                } else if self.cfg.grouped_wire && self.method == Method::AdaQp {
                    let send = self.assignment.bwd[l].clone();
                    let recv = self.assignment.bwd_recv[l].clone();
                    let stats = exchange_backward_grouped(
                        &mut self.dev,
                        self.part,
                        grad_ext,
                        grad_local,
                        &send,
                        &recv,
                        &mut self.rng,
                    );
                    self.charge_ring(tb, bytes, &stats, uniform_bits(&send));
                } else if self.cfg.stream_quant {
                    let widths = self.assignment.bwd[l].clone();
                    let stats = crate::exchange::exchange_backward_quant_streamed(
                        &mut self.dev,
                        self.part,
                        grad_ext,
                        grad_local,
                        &widths,
                        &mut self.rng,
                        &self.cost,
                    );
                    self.charge_ring(tb, bytes, &stats, uniform_bits(&widths));
                } else {
                    let widths = self.assignment.bwd[l].clone();
                    let residuals = if self.cfg.error_feedback {
                        Some(&mut self.ef_bwd[l])
                    } else {
                        None
                    };
                    let stats = exchange_backward_quant_ef(
                        &mut self.dev,
                        self.part,
                        grad_ext,
                        grad_local,
                        &widths,
                        residuals,
                        &mut self.rng,
                    );
                    self.charge_ring(tb, bytes, &stats, uniform_bits(&widths));
                }
            }
            Method::PipeGcn => {
                // Remote gradient contributions arrive one epoch late.
                let mut fresh = Matrix::zeros(grad_local.rows(), grad_local.cols());
                let stats = exchange_backward_fp32(&mut self.dev, self.part, grad_ext, &mut fresh);
                self.charge_ring(tb, bytes, &stats, Some(32));
                if epoch == 0 {
                    // Warm-up epoch applies fresh gradients synchronously.
                    grad_local.add_assign(&fresh);
                    // Leave the stale buffer zeroed so nothing double-counts.
                } else {
                    let prev = std::mem::replace(&mut self.stale_grads[l], fresh);
                    grad_local.add_assign(&prev);
                }
            }
            Method::Sancus => {
                // Communication-avoiding: remote gradient contributions are
                // skipped entirely.
            }
        }
    }

    fn charge_ring(
        &mut self,
        tb: &mut TimeBreakdown,
        bytes: &mut usize,
        stats: &ExchangeStats,
        width_bits: Option<u8>,
    ) {
        let comm_secs = stats.ring_seconds(&self.cost, self.part.rank);
        let quant_secs = self.cost.ops_time_for(self.part.rank, stats.quant_ops);
        self.charge(tb, TimeCategory::Comm, comm_secs);
        self.charge(tb, TimeCategory::Quant, quant_secs);
        *bytes += stats.total_sent();
        self.record_ring_metrics(stats, width_bits);
        if self.dev.telemetry().is_enabled() {
            self.dev.telemetry_mut().record_detail(
                EventKind::QuantEncode,
                quant_secs,
                EventDetail {
                    host_seconds: stats.quant_cpu_seconds,
                    threads: Some(tensor::par::current_threads() as u32),
                    ..EventDetail::default()
                },
            );
            self.emit_comm_events(&stats.sent_bytes, &stats.recv_bytes, comm_secs, width_bits);
        }
    }

    /// Records the deterministic observability counters for one halo
    /// exchange: per-pair message volume tagged with the chosen bit-width
    /// ("mixed" when groups disagree, "32" for fp32 paths) and per-width
    /// quantization range/error statistics. Everything recorded here is a
    /// pure function of the exchanged data, so the merged registry is
    /// byte-identical at any worker-thread count.
    fn record_ring_metrics(&mut self, stats: &ExchangeStats, width_bits: Option<u8>) {
        let rank = self.part.rank;
        let encode = stats.encode_stats;
        let sent: Vec<(usize, usize)> = stats
            .sent_bytes
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b > 0)
            .map(|(q, &b)| (q, b))
            .collect();
        let Some(reg) = self.dev.metrics_mut() else {
            return;
        };
        let width = match width_bits {
            Some(b) => b.to_string(),
            None => "mixed".to_string(),
        };
        let src = rank.to_string();
        for (q, b) in sent {
            reg.counter_add(
                "adaqp_halo_sent_bytes_total",
                &[("src", &src), ("dst", &q.to_string()), ("width", &width)],
                // Payload sizes stay far below 2^53, so the f64 counter is exact.
                b as f64,
            );
        }
        for w in BitWidth::ALL {
            let ws = encode.for_width(w);
            if ws.rows == 0 {
                continue;
            }
            let bits = (w.bits()).to_string();
            let labels = [("width", bits.as_str())];
            // Row counts stay far below 2^53, so the f64 counter is exact.
            reg.counter_add("adaqp_quant_rows_total", &labels, ws.rows as f64);
            // Element counts stay far below 2^53, so the f64 counter is exact.
            reg.counter_add("adaqp_quant_elements_total", &labels, ws.elements as f64);
            reg.counter_add("adaqp_quant_range_sum", &labels, ws.sum_range);
            reg.counter_add("adaqp_quant_sq_error_sum", &labels, ws.sum_sq_err);
        }
    }

    /// Splits one communication charge into per-peer send/recv events,
    /// proportional to payload bytes, so event durations sum back to the
    /// charged seconds (within float tolerance). Byte-free but nonzero
    /// charges (pure latency) become a single peer-less span.
    fn emit_comm_events(
        &mut self,
        sent: &[usize],
        recv: &[usize],
        comm_secs: f64,
        width_bits: Option<u8>,
    ) {
        let total: usize = sent.iter().chain(recv.iter()).sum();
        if total == 0 {
            if comm_secs > 0.0 {
                self.dev
                    .telemetry_mut()
                    .record(EventKind::HaloSend, comm_secs);
            }
            return;
        }
        let per_byte = comm_secs / total as f64;
        for (kind, volumes) in [(EventKind::HaloSend, sent), (EventKind::HaloRecv, recv)] {
            for (q, &b) in volumes.iter().enumerate() {
                if b > 0 {
                    self.dev.telemetry_mut().record_detail(
                        kind,
                        b as f64 * per_byte,
                        EventDetail {
                            peer: Some(q as u32),
                            bytes: b as u64,
                            width_bits,
                            ..EventDetail::default()
                        },
                    );
                }
            }
        }
    }

    /// Aggregates central rows and marginal rows separately, charging each
    /// to its own bucket (analytically: 2 ops per aggregation entry per
    /// feature column), and reassembles the local target matrix.
    fn aggregate_split(&mut self, xe: &Matrix, tb: &mut TimeBreakdown) -> Matrix {
        let dim = xe.cols() as f64;
        // The simulated charge stays analytic (ops through the cost model);
        // the measured host wall-clock of the parallel aggregation kernel
        // rides along on the span as a diagnostic so fig10/table5 breakdowns
        // can report real kernel time per thread count.
        let threads = Some(tensor::par::current_threads() as u32);
        let (zc, host_c) =
            comm::timing::measure(|| self.part.agg.aggregate_rows(xe, &self.part.central));
        let ops_c = self.part.agg.entries_for(&self.part.central) as f64 * dim * 2.0;
        let central_secs = self.cost.ops_time_for(self.part.rank, ops_c);
        self.charge(tb, TimeCategory::CentralComp, central_secs);
        self.dev.telemetry_mut().record_detail(
            EventKind::CentralCompute,
            central_secs,
            EventDetail {
                host_seconds: host_c,
                threads,
                ..EventDetail::default()
            },
        );
        let (zm, host_m) =
            comm::timing::measure(|| self.part.agg.aggregate_rows(xe, &self.part.marginal));
        let ops_m = self.part.agg.entries_for(&self.part.marginal) as f64 * dim * 2.0;
        let marginal_secs = self.cost.ops_time_for(self.part.rank, ops_m);
        self.charge(tb, TimeCategory::MarginalComp, marginal_secs);
        self.dev.telemetry_mut().record_detail(
            EventKind::MarginalCompute,
            marginal_secs,
            EventDetail {
                host_seconds: host_m,
                threads,
                ..EventDetail::default()
            },
        );
        let mut z = Matrix::zeros(self.part.num_local(), xe.cols());
        for (k, &li) in self.part.central.iter().enumerate() {
            z.row_mut(li as usize).copy_from_slice(zc.row(k));
        }
        for (k, &li) in self.part.marginal.iter().enumerate() {
            z.row_mut(li as usize).copy_from_slice(zm.row(k));
        }
        z
    }

    /// Splits an analytic dense-kernel cost between the central and marginal
    /// buckets proportionally to node counts (the kernels are row-wise).
    fn charge_split_ops(&mut self, tb: &mut TimeBreakdown, ops: f64) {
        let sim = self.cost.ops_time_for(self.part.rank, ops);
        self.charge(tb, TimeCategory::CentralComp, sim * self.central_frac);
        self.charge(
            tb,
            TimeCategory::MarginalComp,
            sim * (1.0 - self.central_frac),
        );
        self.dev
            .telemetry_mut()
            .record(EventKind::CentralCompute, sim * self.central_frac);
        self.dev
            .telemetry_mut()
            .record(EventKind::MarginalCompute, sim * (1.0 - self.central_frac));
    }

    /// Operation count of one dense layer application on `rows` nodes:
    /// the neighbor matmul, the optional self-path matmul, and the
    /// LayerNorm/ReLU/dropout tail. `factor` is 1 for forward, ~2 for
    /// backward (two transposed matmuls per weight).
    fn dense_ops(&self, rows: usize, l: usize, factor: f64) -> f64 {
        let din = self.dims[l] as f64;
        let dout = self.dims[l + 1] as f64;
        let paths = if self.model.kind().uses_self_path() {
            2.0
        } else {
            1.0
        };
        let matmul = rows as f64 * din * dout * 2.0 * paths * factor;
        let tail = rows as f64 * dout * 8.0;
        matmul + tail
    }

    /// Modeled seconds of the gather+broadcast gradient allreduce.
    fn allreduce_seconds(&self, bytes: usize) -> f64 {
        let n = self.cost.num_devices();
        let mut up: f64 = 0.0;
        let mut down: f64 = 0.0;
        for r in 1..n {
            up = up.max(self.cost.transfer_time(r, 0, bytes));
            down = down.max(self.cost.transfer_time(0, r, bytes));
        }
        up + down
    }

    /// Local loss sum over training nodes plus the globally scaled logits
    /// gradient.
    fn loss_and_grad(&self, logits: &Matrix) -> (f64, Matrix) {
        let mask = &self.part.train_mask;
        let local_cnt = mask.iter().filter(|&&b| b).count();
        let global_cnt = self.part.global.num_train.max(1);
        let scale = local_cnt as f32 / global_cnt as f32;
        match &self.part.labels {
            LocalLabels::Single(labels) => {
                let loss = softmax_cross_entropy_loss(logits, labels, mask);
                let mut grad = softmax_cross_entropy_backward(logits, labels, mask);
                grad.scale(scale);
                (loss as f64 * local_cnt as f64, grad)
            }
            LocalLabels::Multi(targets) => {
                let w = self.part.global.pos_weight;
                let loss = sigmoid_bce_loss_weighted(logits, targets, mask, w);
                let mut grad = sigmoid_bce_backward_weighted(logits, targets, mask, w);
                grad.scale(scale);
                (loss as f64 * local_cnt as f64, grad)
            }
        }
    }

    /// Evaluation forward pass (full precision, eval mode); returns local
    /// metric accumulators. Not charged to simulated time: the paper's
    /// throughput numbers measure training epochs only.
    fn evaluate(&mut self) -> MetricParts {
        let num_layers = self.num_layers();
        let mut h = self.part.features.clone();
        for l in 0..num_layers {
            let (halo, _) = exchange_forward_fp32(&mut self.dev, self.part, &h);
            let xe = Matrix::vstack(&[&h, &halo]);
            let z = self.part.agg.aggregate(&xe);
            let self_path = self.model.kind().uses_self_path();
            let h_prev = h.clone();
            let layer = &mut self.model.layers_mut()[l];
            h = layer.forward_dense(&z, self_path.then_some(&h_prev), false, &mut self.rng);
        }
        self.local_metrics(&h)
    }

    fn local_metrics(&self, logits: &Matrix) -> MetricParts {
        let mut parts = MetricParts::default();
        match &self.part.labels {
            LocalLabels::Single(labels) => {
                for i in 0..logits.rows() {
                    let on_val = self.part.val_mask[i];
                    let on_test = self.part.test_mask[i];
                    if !on_val && !on_test {
                        continue;
                    }
                    let row = logits.row(i);
                    let mut best = 0usize;
                    let mut best_v = f32::NEG_INFINITY;
                    for (j, &v) in row.iter().enumerate() {
                        if v > best_v {
                            best_v = v;
                            best = j;
                        }
                    }
                    let hit = f64::from(best == labels[i]);
                    if on_val {
                        parts.val[0] += hit;
                        parts.val[1] += 1.0;
                    }
                    if on_test {
                        parts.test[0] += hit;
                        parts.test[1] += 1.0;
                    }
                }
            }
            LocalLabels::Multi(targets) => {
                for i in 0..logits.rows() {
                    let on_val = self.part.val_mask[i];
                    let on_test = self.part.test_mask[i];
                    if !on_val && !on_test {
                        continue;
                    }
                    let mut tp = 0.0;
                    let mut fp = 0.0;
                    let mut fn_ = 0.0;
                    for (&z, &y) in logits.row(i).iter().zip(targets.row(i)) {
                        match (z > 0.0, y > 0.5) {
                            (true, true) => tp += 1.0,
                            (true, false) => fp += 1.0,
                            (false, true) => fn_ += 1.0,
                            (false, false) => {}
                        }
                    }
                    if on_val {
                        parts.val[0] += tp;
                        parts.val[1] += fp;
                        parts.val[2] += fn_;
                    }
                    if on_test {
                        parts.test[0] += tp;
                        parts.test[1] += fp;
                        parts.test[2] += fn_;
                    }
                }
            }
        }
        parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::build_partitions;
    use graph::DatasetSpec;

    /// Runs `f` on a single-device cluster with a real trainer.
    fn with_single_device_trainer<T: Send>(
        cfg: TrainingConfig,
        method: Method,
        f: impl Fn(&mut DeviceTrainer) -> T + Sync,
    ) -> T {
        let ds = DatasetSpec::tiny().generate(17);
        let mut rng = Rng::seed_from(18);
        let part = graph::partition::metis_like(&ds.graph, 1, &mut rng);
        let parts = build_partitions(&ds, &part, cfg.conv_kind());
        let parts_ref = &parts;
        let cfg_ref = &cfg;
        let f_ref = &f;
        let mut out = comm::Cluster::run_fn(1, move |dev| {
            let cost = comm::CostModel::homogeneous(1, 1e9, 1e-5);
            let mut t = DeviceTrainer::new(dev, &parts_ref[0], cfg_ref, method, cost, 17);
            f_ref(&mut t)
        });
        out.pop().expect("one device ran")
    }

    fn quick_cfg() -> TrainingConfig {
        TrainingConfig {
            epochs: 2,
            hidden: 8,
            num_layers: 2,
            dropout: 0.0,
            ..TrainingConfig::default()
        }
    }

    #[test]
    fn loss_and_grad_respects_global_scaling() {
        let record = with_single_device_trainer(quick_cfg(), Method::Vanilla, |t| {
            let logits = Matrix::from_fn(t.part.num_local(), t.part.global.num_classes, |i, j| {
                ((i + j) as f32 * 0.7).sin()
            });
            let (loss_sum, grad) = t.loss_and_grad(&logits);
            (loss_sum, grad, t.part.global.num_train)
        });
        let (loss_sum, grad, n_train) = record;
        assert!(loss_sum.is_finite() && loss_sum > 0.0);
        // All nodes are local on one device, so loss_sum / n_train is the
        // global mean loss and grads already carry the 1/n_train scale.
        assert!(grad.frobenius_norm() > 0.0);
        assert!(n_train > 0);
    }

    #[test]
    fn assign_epoch_schedule() {
        let cfg = TrainingConfig {
            reassign_period: 5,
            ..quick_cfg()
        };
        let flags = with_single_device_trainer(cfg, Method::AdaQp, |t| {
            (0..12).map(|e| t.is_assign_epoch(e)).collect::<Vec<_>>()
        });
        assert!(flags[0], "epoch 0 always assigns");
        assert!(flags[4] && flags[9], "period boundaries assign");
        assert!(!flags[1] && !flags[2] && !flags[6]);
        // Vanilla never assigns.
        let none = with_single_device_trainer(quick_cfg(), Method::Vanilla, |t| {
            (0..6).any(|e| t.is_assign_epoch(e))
        });
        assert!(!none);
    }

    #[test]
    fn epoch_record_has_consistent_accounting() {
        let rec = with_single_device_trainer(quick_cfg(), Method::Vanilla, |t| t.run_epoch(0));
        // Single device: no halo, no bytes.
        assert_eq!(rec.bytes_sent, 0);
        assert!(rec.loss_sum.is_finite());
        assert!(rec.breakdown.total_comp() > 0.0, "compute must be charged");
        assert!(rec.breakdown.comm >= 0.0);
    }
}
