//! Human-readable reporting: render one or more [`RunResult`]s as aligned
//! text or Markdown tables (the CLI and bench harness both use these).

use crate::metrics::RunResult;

/// One rendered comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportRow {
    /// Method name.
    pub method: String,
    /// Best validation score, percent.
    pub val_pct: f64,
    /// Test score at the best-validation epoch, percent.
    pub test_pct: f64,
    /// Simulated throughput, epochs/second.
    pub throughput: f64,
    /// Speedup over the first row.
    pub speedup: f64,
    /// Simulated wall-clock seconds.
    pub wallclock_s: f64,
    /// Megabytes moved.
    pub mb_moved: f64,
}

/// Builds comparison rows from runs; the first run is the speedup baseline.
///
/// # Panics
///
/// Panics if `runs` is empty.
pub fn comparison_rows(runs: &[RunResult]) -> Vec<ReportRow> {
    assert!(!runs.is_empty(), "need at least one run to report");
    let base_tp = runs[0].throughput.max(1e-12);
    runs.iter()
        .map(|r| ReportRow {
            method: r.method.clone(),
            val_pct: r.best_val * 100.0,
            test_pct: r.test_at_best * 100.0,
            throughput: r.throughput,
            speedup: r.throughput / base_tp,
            wallclock_s: r.total_sim_seconds,
            mb_moved: r.total_bytes as f64 / 1e6,
        })
        .collect()
}

/// Renders runs as a GitHub-flavored Markdown table.
///
/// # Panics
///
/// Panics if `runs` is empty.
pub fn markdown_table(runs: &[RunResult]) -> String {
    let rows = comparison_rows(runs);
    let mut out = String::new();
    out.push_str(&format!(
        "Dataset: **{}** ({})\n\n",
        runs[0].dataset, runs[0].partition
    ));
    out.push_str(
        "| Method | Val acc | Test acc | Throughput | Speedup | Wall-clock | MB moved |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {:.2}% | {:.2}% | {:.2} ep/s | {:.2}x | {:.3}s | {:.2} |\n",
            r.method, r.val_pct, r.test_pct, r.throughput, r.speedup, r.wallclock_s, r.mb_moved
        ));
    }
    out
}

/// Renders an epoch-vs-validation-accuracy curve as a compact sparkline
/// string (8 levels), for terminal convergence summaries.
pub fn sparkline(values: &[f64]) -> String {
    const LEVELS: [char; 8] = [
        '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
        '\u{2588}',
    ];
    if values.is_empty() {
        return String::new();
    }
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    values
        .iter()
        .map(|&v| {
            let idx = (((v - lo) / span) * 7.0).round() as usize;
            LEVELS[idx.min(7)]
        })
        .collect()
}

/// Summarizes a run in a few lines of plain text.
pub fn summary(run: &RunResult) -> String {
    let curve: Vec<f64> = run.per_epoch.iter().map(|e| e.val_score).collect();
    format!(
        "{} on {} ({}): val {:.2}% / test {:.2}%, {:.2} ep/s, {:.3}s total, comm {:.1}%\n  val curve: {}",
        run.method,
        run.dataset,
        run.partition,
        run.best_val * 100.0,
        run.test_at_best * 100.0,
        run.throughput,
        run.total_sim_seconds,
        run.comm_fraction() * 100.0,
        sparkline(&curve)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::EpochMetrics;

    fn fake_run(method: &str, tp: f64, val: f64) -> RunResult {
        RunResult {
            method: method.to_string(),
            dataset: "tiny".into(),
            partition: "1M-2D".into(),
            per_epoch: (0..5)
                .map(|e| EpochMetrics {
                    epoch: e,
                    loss: 1.0 / (e + 1) as f64,
                    val_score: val * (e + 1) as f64 / 5.0,
                    test_score: val,
                    sim_seconds: 1.0 / tp,
                    breakdown: comm::TimeBreakdown::new(),
                    bytes_sent: 1000,
                })
                .collect(),
            best_val: val,
            test_at_best: val,
            total_sim_seconds: 5.0 / tp,
            throughput: tp,
            total_breakdown: comm::TimeBreakdown::new(),
            total_bytes: 5000,
            telemetry: None,
            metrics: None,
        }
    }

    #[test]
    fn comparison_rows_speedup_relative_to_first() {
        let runs = vec![
            fake_run("Vanilla", 10.0, 0.9),
            fake_run("AdaQP", 25.0, 0.89),
        ];
        let rows = comparison_rows(&runs);
        assert_eq!(rows[0].speedup, 1.0);
        assert!((rows[1].speedup - 2.5).abs() < 1e-9);
        assert!((rows[1].val_pct - 89.0).abs() < 1e-9);
    }

    #[test]
    fn markdown_table_contains_all_methods() {
        let runs = vec![
            fake_run("Vanilla", 10.0, 0.9),
            fake_run("AdaQP", 25.0, 0.89),
        ];
        let md = markdown_table(&runs);
        assert!(md.contains("| Vanilla |"));
        assert!(md.contains("| AdaQP |"));
        assert!(md.contains("2.50x"));
        assert!(md.starts_with("Dataset: **tiny**"));
    }

    #[test]
    fn sparkline_shape() {
        assert_eq!(sparkline(&[]), "");
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        let chars: Vec<char> = s.chars().collect();
        assert!(chars[0] < chars[2], "sparkline should ascend");
        // Constant input does not panic (span clamped).
        assert_eq!(sparkline(&[2.0, 2.0]).chars().count(), 2);
    }

    #[test]
    fn summary_mentions_method_and_dataset() {
        let s = summary(&fake_run("AdaQP", 10.0, 0.8));
        assert!(s.contains("AdaQP on tiny"));
        assert!(s.contains("80.00%"));
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn empty_runs_panic() {
        let _ = comparison_rows(&[]);
    }
}
