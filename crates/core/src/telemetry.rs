//! Run-level telemetry: collection, aggregation and export.
//!
//! The comm crate records per-device [`Event`] streams on the simulated
//! clock (see [`comm::telemetry`]); this module assembles them into a
//! [`TelemetryLog`] stored on [`crate::RunResult`], reduces them to
//! per-epoch [`TimeBreakdown`]s via [`TelemetryAggregate`] (the structure
//! Fig. 10 and Table 5 report), and exports two formats:
//!
//! * **JSONL** — one flattened event object per line, for ad-hoc analysis.
//! * **Chrome `trace_event` JSON** — loadable in Perfetto / `chrome://tracing`;
//!   devices become processes and [`TimeCategory`] tracks become threads, so
//!   the comm/compute overlap is visible on the timeline.

pub use comm::telemetry::{breakdown_of, Event, EventDetail, EventKind};

use crate::config::Method;
use crate::metrics::epoch_time_with_overlap;
use comm::{TimeBreakdown, TimeCategory};
use serde::{Deserialize, Serialize};
use serde_json::{Map, Value};
use std::io::Write;
use std::path::Path;

/// All events one device recorded over a run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DeviceLog {
    /// The recording device's rank.
    pub rank: usize,
    /// Events in recording order (per-track simulated clocks are monotone).
    pub events: Vec<Event>,
}

/// The whole cluster's telemetry for one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetryLog {
    /// One log per device, in rank order.
    pub devices: Vec<DeviceLog>,
}

impl TelemetryLog {
    /// Builds a log from per-device event streams in rank order.
    pub fn from_device_events(events: Vec<Vec<Event>>) -> Self {
        TelemetryLog {
            devices: events
                .into_iter()
                .enumerate()
                .map(|(rank, events)| DeviceLog { rank, events })
                .collect(),
        }
    }

    /// Total event count across devices.
    pub fn num_events(&self) -> usize {
        self.devices.iter().map(|d| d.events.len()).sum()
    }

    /// Reduces the event streams to per-device, per-epoch breakdowns.
    pub fn aggregate(&self) -> TelemetryAggregate {
        let epochs = self
            .devices
            .iter()
            .flat_map(|d| d.events.iter())
            .map(|e| e.epoch as usize + 1)
            .max()
            .unwrap_or(0);
        let per_device = self
            .devices
            .iter()
            .map(|d| {
                let mut tbs = vec![TimeBreakdown::new(); epochs];
                for e in &d.events {
                    tbs[e.epoch as usize].charge(e.kind.category(), e.duration());
                }
                tbs
            })
            .collect();
        TelemetryAggregate { per_device }
    }

    /// Serializes to JSONL: one flattened `{rank, kind, start, ...}` object
    /// per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for dev in &self.devices {
            for e in &dev.events {
                let mut obj = Map::new();
                obj.insert("rank".into(), serde_json::to_value(&dev.rank));
                if let Value::Object(fields) = serde_json::to_value(e) {
                    for (k, v) in fields.iter() {
                        obj.insert(k.clone(), v.clone());
                    }
                }
                // lint:allow(no-panic): serializing an in-memory Value tree cannot fail
                out.push_str(&serde_json::to_string(&Value::Object(obj)).expect("jsonl encodes"));
                out.push('\n');
            }
        }
        out
    }

    /// Writes [`TelemetryLog::to_jsonl`] to `path`.
    pub fn write_jsonl(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_jsonl().as_bytes())
    }

    /// Renders the log in Chrome `trace_event` JSON (the format Perfetto and
    /// `chrome://tracing` load). Each device is a process; each
    /// [`TimeCategory`] track is a thread inside it; spans are complete
    /// (`"ph": "X"`) events with microsecond timestamps.
    pub fn chrome_trace(&self) -> Value {
        let mut trace_events: Vec<Value> = Vec::with_capacity(self.num_events() + 8);
        for dev in &self.devices {
            trace_events.push(metadata_event(
                "process_name",
                dev.rank,
                None,
                &format!("device {}", dev.rank),
            ));
            for cat in TimeCategory::ALL {
                trace_events.push(metadata_event(
                    "thread_name",
                    dev.rank,
                    Some(cat.index()),
                    cat.label(),
                ));
            }
            for e in &dev.events {
                trace_events.push(span_event(dev.rank, e));
            }
        }
        let mut root = Map::new();
        root.insert("traceEvents".into(), Value::Array(trace_events));
        root.insert("displayTimeUnit".into(), Value::String("ms".into()));
        Value::Object(root)
    }

    /// [`TelemetryLog::chrome_trace`] rendered with paired duration events
    /// (`"ph": "B"` / `"ph": "E"`) instead of complete `"X"` spans — some
    /// trace consumers only understand begin/end pairs. Per-track clocks are
    /// monotone and spans on one track never overlap, so emitting each
    /// span's begin immediately followed by its end keeps every
    /// `(pid, tid)` stream properly nested.
    pub fn chrome_trace_begin_end(&self) -> Value {
        let mut trace_events: Vec<Value> = Vec::with_capacity(2 * self.num_events() + 8);
        for dev in &self.devices {
            trace_events.push(metadata_event(
                "process_name",
                dev.rank,
                None,
                &format!("device {}", dev.rank),
            ));
            for cat in TimeCategory::ALL {
                trace_events.push(metadata_event(
                    "thread_name",
                    dev.rank,
                    Some(cat.index()),
                    cat.label(),
                ));
            }
            for e in &dev.events {
                let (begin, end) = begin_end_events(dev.rank, e);
                trace_events.push(begin);
                trace_events.push(end);
            }
        }
        let mut root = Map::new();
        root.insert("traceEvents".into(), Value::Array(trace_events));
        root.insert("displayTimeUnit".into(), Value::String("ms".into()));
        Value::Object(root)
    }

    /// Sums the measured host wall-clock seconds of the parallel kernels
    /// behind each device's spans (aggregation, quantization codecs), along
    /// with the runtime thread count the kernels reported. Purely
    /// diagnostic: simulated breakdowns stay analytic; this is the "real
    /// kernel time" column fig10/table5-style reports print next to them.
    pub fn host_kernel_summary(&self) -> Vec<HostKernelSummary> {
        self.devices
            .iter()
            .map(|d| {
                let mut s = HostKernelSummary {
                    rank: d.rank,
                    ..HostKernelSummary::default()
                };
                for e in &d.events {
                    s.host_seconds += e.host_seconds;
                    if let Some(t) = e.threads {
                        s.threads = Some(s.threads.map_or(t, |prev| prev.max(t)));
                    }
                }
                s
            })
            .collect()
    }

    /// Writes [`TelemetryLog::chrome_trace`] to `path`.
    pub fn write_chrome_trace(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        // lint:allow(no-panic): serializing an in-memory Value tree cannot fail
        let text = serde_json::to_string(&self.chrome_trace()).expect("trace encodes");
        let mut f = std::fs::File::create(path)?;
        f.write_all(text.as_bytes())
    }
}

fn metadata_event(name: &str, pid: usize, tid: Option<usize>, display_name: &str) -> Value {
    let mut args = Map::new();
    args.insert("name".into(), Value::String(display_name.into()));
    let mut obj = Map::new();
    obj.insert("name".into(), Value::String(name.into()));
    obj.insert("ph".into(), Value::String("M".into()));
    obj.insert("pid".into(), serde_json::to_value(&pid));
    if let Some(tid) = tid {
        obj.insert("tid".into(), serde_json::to_value(&tid));
    }
    obj.insert("args".into(), Value::Object(args));
    Value::Object(obj)
}

fn span_event(rank: usize, e: &Event) -> Value {
    let mut args = Map::new();
    args.insert("epoch".into(), serde_json::to_value(&e.epoch));
    if let Some(layer) = e.layer {
        args.insert("layer".into(), serde_json::to_value(&layer));
    }
    if let Some(peer) = e.peer {
        args.insert("peer".into(), serde_json::to_value(&peer));
    }
    if e.bytes > 0 {
        args.insert("bytes".into(), serde_json::to_value(&e.bytes));
    }
    if let Some(bits) = e.width_bits {
        args.insert("width_bits".into(), serde_json::to_value(&bits));
    }
    if e.host_seconds > 0.0 {
        args.insert("host_seconds".into(), serde_json::to_value(&e.host_seconds));
    }
    if let Some(threads) = e.threads {
        args.insert("threads".into(), serde_json::to_value(&threads));
    }
    let mut obj = Map::new();
    obj.insert("name".into(), Value::String(e.kind.name().into()));
    obj.insert(
        "cat".into(),
        Value::String(e.kind.category().label().into()),
    );
    obj.insert("ph".into(), Value::String("X".into()));
    obj.insert("ts".into(), serde_json::to_value(&(e.start * 1e6)));
    obj.insert("dur".into(), serde_json::to_value(&(e.duration() * 1e6)));
    obj.insert("pid".into(), serde_json::to_value(&rank));
    obj.insert(
        "tid".into(),
        serde_json::to_value(&e.kind.category().index()),
    );
    obj.insert("args".into(), Value::Object(args));
    Value::Object(obj)
}

/// One span as a begin/end pair: the `B` event carries the span's args; the
/// `E` event only closes it (name/pid/tid repeated for strict parsers).
fn begin_end_events(rank: usize, e: &Event) -> (Value, Value) {
    let span = span_event(rank, e);
    // span_event always returns an object, so the else arm is unreachable.
    let Value::Object(mut begin) = span else {
        unreachable!("span_event returns an object")
    };
    begin.remove("dur");
    begin.insert("ph".into(), Value::String("B".into()));
    let mut end = Map::new();
    for key in ["name", "cat", "pid", "tid"] {
        if let Some(v) = begin.get(key) {
            end.insert(key.into(), v.clone());
        }
    }
    end.insert("ph".into(), Value::String("E".into()));
    end.insert("ts".into(), serde_json::to_value(&(e.end * 1e6)));
    (Value::Object(begin), Value::Object(end))
}

/// One device's measured host kernel time over a run (see
/// [`TelemetryLog::host_kernel_summary`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HostKernelSummary {
    /// The device's rank.
    pub rank: usize,
    /// Total measured host wall-clock seconds across the device's spans.
    pub host_seconds: f64,
    /// Parallel-runtime worker count the kernels reported (`None` when no
    /// span carried one).
    pub threads: Option<u32>,
}

/// Per-device, per-epoch [`TimeBreakdown`]s reconstructed from telemetry
/// events; the in-memory reduction figure binaries consume instead of
/// keeping ad-hoc accumulators.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryAggregate {
    /// Breakdowns indexed `[rank][epoch]`.
    pub per_device: Vec<Vec<TimeBreakdown>>,
}

impl TelemetryAggregate {
    /// Number of epochs covered.
    pub fn num_epochs(&self) -> usize {
        self.per_device.first().map_or(0, Vec::len)
    }

    /// The slowest device's epoch time and breakdown for `epoch` under
    /// `method`'s overlap schedule — the same straggler selection
    /// [`crate::runner`] uses to combine device records, so these sums match
    /// [`crate::RunResult::total_breakdown`] within float tolerance.
    pub fn epoch_critical_path(
        &self,
        method: Method,
        disable_overlap: bool,
        epoch: usize,
    ) -> (f64, TimeBreakdown) {
        let mut slowest = 0.0f64;
        let mut slowest_tb = TimeBreakdown::new();
        for dev in &self.per_device {
            let tb = dev[epoch];
            let t = epoch_time_with_overlap(method, disable_overlap, &tb);
            if t >= slowest {
                slowest = t;
                slowest_tb = tb;
            }
        }
        (slowest, slowest_tb)
    }

    /// Sums [`TelemetryAggregate::epoch_critical_path`] over all epochs:
    /// total simulated wall-clock and the straggler breakdown total.
    pub fn cluster_totals(&self, method: Method, disable_overlap: bool) -> (f64, TimeBreakdown) {
        let mut total = 0.0;
        let mut tb = TimeBreakdown::new();
        for e in 0..self.num_epochs() {
            let (t, etb) = self.epoch_critical_path(method, disable_overlap, e);
            total += t;
            tb += etb;
        }
        (total, tb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> TelemetryLog {
        let mk = |kind: EventKind, start: f64, end: f64, epoch: u32| Event {
            kind,
            start,
            end,
            epoch,
            layer: Some(0),
            peer: None,
            bytes: 128,
            width_bits: Some(32),
            host_seconds: 0.0,
            threads: None,
        };
        TelemetryLog::from_device_events(vec![
            vec![
                mk(EventKind::HaloSend, 0.0, 1.0, 0),
                mk(EventKind::CentralCompute, 0.0, 0.5, 0),
                mk(EventKind::MarginalCompute, 1.0, 1.25, 1),
            ],
            vec![mk(EventKind::HaloRecv, 0.0, 2.0, 0)],
        ])
    }

    #[test]
    fn aggregate_buckets_by_rank_and_epoch() {
        let agg = sample_log().aggregate();
        assert_eq!(agg.per_device.len(), 2);
        assert_eq!(agg.num_epochs(), 2);
        assert_eq!(agg.per_device[0][0].comm, 1.0);
        assert_eq!(agg.per_device[0][0].central_comp, 0.5);
        assert_eq!(agg.per_device[0][1].marginal_comp, 0.25);
        assert_eq!(agg.per_device[1][0].comm, 2.0);
    }

    #[test]
    fn critical_path_picks_straggler() {
        let agg = sample_log().aggregate();
        // Epoch 0: device 1 has 2.0s of comm vs device 0's 1.5s serial.
        let (t, tb) = agg.epoch_critical_path(Method::Vanilla, false, 0);
        assert_eq!(t, 2.0);
        assert_eq!(tb.comm, 2.0);
        let (total, _) = agg.cluster_totals(Method::Vanilla, false);
        assert_eq!(total, 2.25);
    }

    #[test]
    fn jsonl_one_line_per_event_with_rank() {
        let log = sample_log();
        let text = log.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), log.num_events());
        let first: Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first["rank"].as_u64(), Some(0));
        assert_eq!(first["kind"].as_str(), Some("HaloSend"));
        let last: Value = serde_json::from_str(lines[3]).unwrap();
        assert_eq!(last["rank"].as_u64(), Some(1));
    }

    #[test]
    fn chrome_trace_shape() {
        let log = sample_log();
        let trace = log.chrome_trace();
        let events = trace["traceEvents"].as_array().expect("array");
        // 2 devices x (1 process_name + 5 thread_name) metadata + 4 spans.
        assert_eq!(events.len(), 2 * 6 + 4);
        let spans: Vec<&Value> = events
            .iter()
            .filter(|e| e["ph"].as_str() == Some("X"))
            .collect();
        assert_eq!(spans.len(), 4);
        let s = spans[0];
        assert_eq!(s["name"].as_str(), Some("halo_send"));
        assert_eq!(s["ts"].as_f64(), Some(0.0));
        assert_eq!(s["dur"].as_f64(), Some(1e6));
        assert_eq!(s["args"]["bytes"].as_u64(), Some(128));
        // Round-trips through the JSON text layer.
        let text = serde_json::to_string(&trace).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(back["traceEvents"].as_array().unwrap().len(), events.len());
    }

    /// A fixed log exercising float formatting: host-kernel fractions, a
    /// value that only round-trips with 17 significant digits, and span
    /// boundaries that are not representable exactly in binary.
    fn golden_log() -> TelemetryLog {
        let mut log = sample_log();
        log.devices[0].events[0].host_seconds = 0.000_123_456_789_012_345;
        log.devices[0].events[0].threads = Some(4);
        log.devices[1].events[0].start = 0.1;
        log.devices[1].events[0].end = 0.1 + 0.2; // 0.30000000000000004
        log
    }

    fn golden_path(name: &str) -> std::path::PathBuf {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("testdata")
            .join(name)
    }

    /// Byte-compares `actual` against the committed golden file. Run with
    /// `ADAQP_BLESS=1` to regenerate the goldens after an intended change.
    fn assert_matches_golden(name: &str, actual: &str) {
        let path = golden_path(name);
        if std::env::var("ADAQP_BLESS").is_ok() {
            std::fs::write(&path, actual).expect("write golden");
        }
        let golden = std::fs::read_to_string(&path)
            .expect("golden file missing; regenerate with ADAQP_BLESS=1");
        assert_eq!(
            actual, golden,
            "{name} drifted from the committed bytes; if intended, regenerate with ADAQP_BLESS=1"
        );
    }

    #[test]
    fn jsonl_bytes_match_golden_file() {
        assert_matches_golden("telemetry_events.golden.jsonl", &golden_log().to_jsonl());
    }

    #[test]
    fn chrome_trace_bytes_match_golden_file() {
        let text = serde_json::to_string(&golden_log().chrome_trace()).expect("encodes");
        assert_matches_golden("telemetry_trace.golden.json", &text);
    }

    #[test]
    fn begin_end_trace_parses_back_with_balanced_pairs() {
        let log = sample_log();
        let text = serde_json::to_string(&log.chrome_trace_begin_end()).expect("encodes");
        let back: Value = serde_json::from_str(&text).expect("parses");
        let events = back["traceEvents"].as_array().expect("array");
        // Per device: 1 process_name + 5 thread_name metadata; then one B
        // and one E per span.
        assert_eq!(events.len(), 2 * 6 + 2 * log.num_events());
        let mut open: std::collections::HashMap<(u64, u64), Vec<f64>> =
            std::collections::HashMap::new();
        let mut pairs = 0;
        for ev in events {
            let ph = ev["ph"].as_str().expect("every event has ph");
            if ph == "M" {
                continue;
            }
            let pid = ev["pid"].as_u64().expect("span has numeric pid");
            let tid = ev["tid"].as_u64().expect("span has numeric tid");
            let ts = ev["ts"].as_f64().expect("span has numeric ts");
            assert!(ts.is_finite() && ts >= 0.0, "ts well-formed");
            assert!(pid < 2, "pid is a device rank");
            assert!(
                (tid as usize) < TimeCategory::ALL.len(),
                "tid is a category track"
            );
            let stack = open.entry((pid, tid)).or_default();
            match ph {
                "B" => stack.push(ts),
                "E" => {
                    let begin = stack.pop().expect("E closes an open B on its track");
                    assert!(ts >= begin, "span duration is non-negative");
                    pairs += 1;
                }
                other => panic!("unexpected ph {other}"),
            }
        }
        assert!(open.values().all(Vec::is_empty), "every B is closed");
        assert_eq!(pairs, log.num_events());
    }

    #[test]
    fn host_kernel_summary_sums_and_takes_max_threads() {
        let mut log = sample_log();
        log.devices[0].events[0].host_seconds = 0.002;
        log.devices[0].events[0].threads = Some(2);
        log.devices[0].events[1].host_seconds = 0.001;
        log.devices[0].events[1].threads = Some(8);
        let s = log.host_kernel_summary();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].rank, 0);
        assert!((s[0].host_seconds - 0.003).abs() < 1e-12);
        assert_eq!(s[0].threads, Some(8));
        assert_eq!(s[1].host_seconds, 0.0);
        assert_eq!(s[1].threads, None);
    }

    #[test]
    fn log_serde_round_trip() {
        let log = sample_log();
        let text = serde_json::to_string(&log).unwrap();
        let back: TelemetryLog = serde_json::from_str(&text).unwrap();
        assert_eq!(back, log);
    }
}
