//! Run results: per-epoch records, throughput and time breakdowns.

use crate::config::Method;
use comm::TimeBreakdown;
use serde::{Deserialize, Serialize};

/// Local metric accumulators one device reports for one epoch. For
/// single-label tasks `val`/`test` hold `[correct, total, 0]`; for
/// multi-label they hold `[tp, fp, fn]`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricParts {
    /// Validation accumulator.
    pub val: [f64; 3],
    /// Test accumulator.
    pub test: [f64; 3],
}

impl MetricParts {
    /// Elementwise sum.
    pub fn merge(&mut self, other: &MetricParts) {
        for i in 0..3 {
            self.val[i] += other.val[i];
            self.test[i] += other.test[i];
        }
    }

    /// Final metric value from an accumulator: accuracy for single-label
    /// (`multi = false`), micro-F1 for multi-label.
    pub fn score(acc: &[f64; 3], multi: bool) -> f64 {
        if multi {
            let denom = 2.0 * acc[0] + acc[1] + acc[2];
            if denom == 0.0 {
                0.0
            } else {
                2.0 * acc[0] / denom
            }
        } else if acc[1] == 0.0 {
            0.0
        } else {
            acc[0] / acc[1]
        }
    }
}

/// One device's record of one epoch (collected by the runner).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DeviceEpochRecord {
    /// Simulated time charged this epoch on this device.
    pub breakdown: TimeBreakdown,
    /// Sum of per-node losses over local training nodes.
    pub loss_sum: f64,
    /// Metric accumulators.
    pub metric: MetricParts,
    /// Bytes this device sent during training exchanges this epoch.
    pub bytes_sent: usize,
    /// L2 norm of the allreduced parameter gradients before the Adam step
    /// (identical on every rank).
    #[serde(default)]
    pub grad_norm: f64,
}

/// Cluster-level record of one epoch.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EpochMetrics {
    /// Epoch index.
    pub epoch: usize,
    /// Global mean training loss.
    pub loss: f64,
    /// Validation metric (accuracy or micro-F1).
    pub val_score: f64,
    /// Test metric.
    pub test_score: f64,
    /// Simulated epoch time: the slowest device's epoch time under the
    /// method's schedule.
    pub sim_seconds: f64,
    /// Slowest device's breakdown for this epoch.
    pub breakdown: TimeBreakdown,
    /// Total bytes moved across the cluster this epoch.
    pub bytes_sent: usize,
}

/// Result of a full experiment run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Method name.
    pub method: String,
    /// Dataset name.
    pub dataset: String,
    /// Partition label (e.g. `2M-4D`).
    pub partition: String,
    /// Per-epoch records.
    pub per_epoch: Vec<EpochMetrics>,
    /// Best validation score over the run.
    pub best_val: f64,
    /// Test score at the best-validation epoch.
    pub test_at_best: f64,
    /// Total simulated wall-clock seconds (training + assignment).
    pub total_sim_seconds: f64,
    /// Simulated throughput, epochs per second.
    pub throughput: f64,
    /// Aggregate simulated time breakdown (summed over epochs; slowest
    /// device per epoch).
    pub total_breakdown: TimeBreakdown,
    /// Total bytes communicated over the run.
    pub total_bytes: usize,
    /// Structured per-device event log; present only when the run was
    /// configured with `training.telemetry = true`.
    #[serde(default)]
    pub telemetry: Option<crate::telemetry::TelemetryLog>,
    /// Merged metric snapshot (device registries merged in rank order, plus
    /// cluster-level per-epoch gauges); present only when the run was
    /// configured with `training.metrics = true`. Contains only the
    /// deterministic series — byte-identical at any worker-thread count.
    #[serde(default)]
    pub metrics: Option<obs::MetricsSnapshot>,
}

impl RunResult {
    /// Fraction of serial time spent communicating, as in Table 1.
    pub fn comm_fraction(&self) -> f64 {
        self.total_breakdown.comm_fraction()
    }
}

/// Composes one device's epoch time from its breakdown under the method's
/// schedule:
///
/// * Vanilla — strictly serial: `comm + comp + quant`;
/// * AdaQP (and Uniform) — central compute hides under comm (Sec. 3.4);
/// * PipeGCN — comm pipelines across iterations: `max(comm, comp) + quant`;
/// * SANCUS — serial, but comm is already only the broadcast-refresh cost.
pub fn epoch_time(method: Method, tb: &TimeBreakdown) -> f64 {
    epoch_time_with_overlap(method, false, tb)
}

/// [`epoch_time`] with the overlap-ablation switch: when
/// `disable_overlap` is true AdaQP's central computation is *not* hidden
/// under communication (design decision D4 in DESIGN.md).
pub fn epoch_time_with_overlap(method: Method, disable_overlap: bool, tb: &TimeBreakdown) -> f64 {
    match method {
        Method::Vanilla | Method::Sancus => tb.serial_total(),
        Method::AdaQp | Method::AdaQpUniform => {
            if disable_overlap {
                tb.serial_total()
            } else {
                tb.overlapped_total()
            }
        }
        Method::PipeGcn => tb.comm.max(tb.total_comp()) + tb.quant + tb.solve,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comm::TimeCategory;

    #[test]
    fn metric_parts_merge_and_score() {
        let mut a = MetricParts {
            val: [8.0, 10.0, 0.0],
            test: [1.0, 1.0, 1.0],
        };
        let b = MetricParts {
            val: [2.0, 10.0, 0.0],
            test: [1.0, 1.0, 1.0],
        };
        a.merge(&b);
        assert_eq!(MetricParts::score(&a.val, false), 0.5);
        // micro-F1: tp=2, fp=2, fn=2 -> 2*2/(4+2+2)=0.5
        assert_eq!(MetricParts::score(&a.test, true), 0.5);
        assert_eq!(MetricParts::score(&[0.0, 0.0, 0.0], false), 0.0);
        assert_eq!(MetricParts::score(&[0.0, 0.0, 0.0], true), 0.0);
    }

    #[test]
    fn epoch_time_per_method() {
        let mut tb = TimeBreakdown::new();
        tb.charge(TimeCategory::Comm, 10.0);
        tb.charge(TimeCategory::CentralComp, 4.0);
        tb.charge(TimeCategory::MarginalComp, 2.0);
        tb.charge(TimeCategory::Quant, 1.0);
        assert_eq!(epoch_time(Method::Vanilla, &tb), 17.0);
        assert_eq!(epoch_time(Method::AdaQp, &tb), 13.0);
        assert_eq!(epoch_time(Method::PipeGcn, &tb), 11.0);
        assert_eq!(epoch_time(Method::Sancus, &tb), 17.0);
    }

    #[test]
    fn pipegcn_compute_bound_case() {
        let mut tb = TimeBreakdown::new();
        tb.charge(TimeCategory::Comm, 3.0);
        tb.charge(TimeCategory::MarginalComp, 7.0);
        assert_eq!(epoch_time(Method::PipeGcn, &tb), 7.0);
    }
}
