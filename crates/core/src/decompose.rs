//! Partition decomposition: per-device local graphs, halo structure,
//! send/receive sets and the central/marginal split (Sec. 3.1).

use gnn::{AggGraph, AggGraphBuilder, ConvKind};
use graph::{CsrGraph, Dataset, Labels, Partition};
use tensor::Matrix;

/// Node labels restricted to one device's local nodes.
#[derive(Debug, Clone)]
pub enum LocalLabels {
    /// Class per local node.
    Single(Vec<usize>),
    /// 0/1 target matrix over local nodes.
    Multi(Matrix),
}

/// Global quantities every device needs for consistent loss/metric scaling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalInfo {
    /// Total nodes in the full graph.
    pub num_nodes: usize,
    /// Global training-node count.
    pub num_train: usize,
    /// Global validation-node count.
    pub num_val: usize,
    /// Global test-node count.
    pub num_test: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Positive-class weight for multi-label BCE (1.0 for single-label):
    /// roughly #negatives / #positives, capped for stability.
    pub pos_weight: f32,
}

/// Everything one device owns: its local nodes, features and labels, the
/// halo structure for cross-device aggregation, and the central/marginal
/// decomposition that enables computation-communication overlap.
///
/// Index spaces:
/// * *local index* `0..num_local` — positions in `local_nodes`;
/// * *halo index* `0..num_halo` — positions in `halo_nodes`;
/// * *extended index* `0..num_local+num_halo` — local indices followed by
///   halo indices; this is the input space of `agg`.
#[derive(Debug, Clone)]
pub struct DevicePartition {
    /// This device's rank.
    pub rank: usize,
    /// Number of partitions.
    pub num_parts: usize,
    /// Global ids of owned nodes, ascending.
    pub local_nodes: Vec<u32>,
    /// Global ids of remote 1-hop neighbors, ascending.
    pub halo_nodes: Vec<u32>,
    /// `send_sets[q]`: local indices of nodes with a neighbor on device `q`
    /// (their messages travel to `q` every layer), ascending.
    pub send_sets: Vec<Vec<u32>>,
    /// `recv_slots[q]`: halo indices the rows received from `q` land in,
    /// aligned with `q`'s `send_sets[rank]` order.
    pub recv_slots: Vec<Vec<u32>>,
    /// `send_alpha_sq[q][k]`: the receiver-side sum of squared aggregation
    /// coefficients applied to message `send_sets[q][k]` — the
    /// `sum_{v in N_T(k)} alpha_{k,v}^2` factor of `beta_k` (Sec. 4.2).
    pub send_alpha_sq: Vec<Vec<f64>>,
    /// Local aggregation operator over the extended space.
    pub agg: AggGraph,
    /// Local indices of central nodes (no remote neighbors).
    pub central: Vec<u32>,
    /// Local indices of marginal nodes (at least one remote neighbor).
    pub marginal: Vec<u32>,
    /// Features of local nodes.
    pub features: Matrix,
    /// Labels of local nodes.
    pub labels: LocalLabels,
    /// Per-local-node masks.
    pub train_mask: Vec<bool>,
    /// Validation mask.
    pub val_mask: Vec<bool>,
    /// Test mask.
    pub test_mask: Vec<bool>,
    /// Global quantities for loss scaling.
    pub global: GlobalInfo,
    /// Owned node count of every partition (`part_sizes[rank] ==
    /// num_local()` for the local rank); used to model full-partition
    /// broadcast volumes.
    pub part_sizes: Vec<usize>,
}

impl DevicePartition {
    /// Owned node count.
    pub fn num_local(&self) -> usize {
        self.local_nodes.len()
    }

    /// Halo slot count.
    pub fn num_halo(&self) -> usize {
        self.halo_nodes.len()
    }

    /// Extended space size.
    pub fn num_ext(&self) -> usize {
        self.num_local() + self.num_halo()
    }

    /// Total messages sent per layer (sum of send-set sizes).
    pub fn messages_per_layer(&self) -> usize {
        self.send_sets.iter().map(Vec::len).sum()
    }

    /// Builds the `rows x dim` message matrix for destination `q` from the
    /// current local embedding matrix.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != num_local()`.
    pub fn gather_send_rows(&self, x: &Matrix, q: usize) -> Matrix {
        assert_eq!(x.rows(), self.num_local(), "x must cover local nodes");
        let idx: Vec<usize> = self.send_sets[q].iter().map(|&i| i as usize).collect();
        x.gather_rows(&idx)
    }

    /// Single-label classes of local nodes.
    ///
    /// # Panics
    ///
    /// Panics on a multi-label partition.
    pub fn single_labels(&self) -> &[usize] {
        match &self.labels {
            LocalLabels::Single(v) => v,
            // lint:allow(no-panic): documented accessor contract — a task-kind mismatch is caller error
            LocalLabels::Multi(_) => panic!("partition holds multi-label targets"),
        }
    }

    /// Multi-label targets of local nodes.
    ///
    /// # Panics
    ///
    /// Panics on a single-label partition.
    pub fn multi_targets(&self) -> &Matrix {
        match &self.labels {
            LocalLabels::Multi(m) => m,
            // lint:allow(no-panic): documented accessor contract — a task-kind mismatch is caller error
            LocalLabels::Single(_) => panic!("partition holds single-label classes"),
        }
    }
}

/// Builds all device partitions for a dataset under a node partition.
///
/// The aggregation graph follows the model family: GCN aggregates over the
/// self-loop-augmented graph with symmetric normalization; GraphSAGE-mean
/// aggregates plain neighbors with `1/deg` (its self path needs no halo).
///
/// # Panics
///
/// Panics if the partition does not cover the dataset's node count.
pub fn build_partitions(
    dataset: &Dataset,
    partition: &Partition,
    kind: ConvKind,
) -> Vec<DevicePartition> {
    assert_eq!(
        partition.assignment.len(),
        dataset.num_nodes(),
        "partition/dataset size mismatch"
    );
    let k = partition.k;
    let graph: CsrGraph = match kind {
        ConvKind::Gcn => dataset.graph.with_self_loops(),
        ConvKind::Sage | ConvKind::Gin => dataset.graph.clone(),
    };
    let coeff = |u: usize, v: usize| -> f32 {
        match kind {
            ConvKind::Gcn => graph.gcn_coeff(u, v),
            ConvKind::Sage => graph.mean_coeff(v),
            ConvKind::Gin => 1.0,
        }
    };
    let assignment = &partition.assignment;
    let pos_weight = match &dataset.labels {
        Labels::Single(_) => 1.0,
        Labels::Multi(m) => {
            let total = m.len() as f32;
            let pos: f32 = m.as_slice().iter().sum();
            ((total - pos) / pos.max(1.0)).clamp(1.0, 25.0)
        }
    };
    let global = GlobalInfo {
        num_nodes: dataset.num_nodes(),
        num_train: dataset.train_mask.iter().filter(|&&b| b).count(),
        num_val: dataset.val_mask.iter().filter(|&&b| b).count(),
        num_test: dataset.test_mask.iter().filter(|&&b| b).count(),
        num_classes: dataset.num_classes,
        pos_weight,
    };

    // Owned nodes per part, ascending by global id.
    let owned: Vec<Vec<u32>> = (0..k)
        .map(|p| {
            partition
                .nodes_of(p)
                .into_iter()
                .map(|v| v as u32)
                .collect()
        })
        .collect();
    // Global -> local index within owner.
    let mut local_index = vec![0u32; dataset.num_nodes()];
    for nodes in &owned {
        for (i, &g) in nodes.iter().enumerate() {
            local_index[g as usize] = i as u32;
        }
    }

    let mut parts = Vec::with_capacity(k);
    for rank in 0..k {
        let local_nodes = owned[rank].clone();
        let num_local = local_nodes.len();

        // Halo = remote aggregation neighbors, sorted ascending.
        let mut halo: Vec<u32> = Vec::new();
        for &g in &local_nodes {
            for &u in graph.neighbors(g as usize) {
                if assignment[u as usize] != rank {
                    halo.push(u);
                }
            }
        }
        halo.sort_unstable();
        halo.dedup();
        let halo_pos =
            // lint:allow(no-panic): halo was built from the same neighbor scan that produces lookups
            |g: u32| -> u32 { halo.binary_search(&g).expect("halo node present") as u32 };

        // Send sets: local indices of nodes adjacent to each remote part.
        let mut send_sets: Vec<Vec<u32>> = vec![Vec::new(); k];
        for (li, &g) in local_nodes.iter().enumerate() {
            let mut touched = vec![false; k];
            for &u in graph.neighbors(g as usize) {
                let q = assignment[u as usize];
                if q != rank && !touched[q] {
                    touched[q] = true;
                    send_sets[q].push(li as u32);
                }
            }
        }

        // Receive slots: for each source q, the halo slots of q's send set
        // to us, in q's (ascending-global-id) send order.
        let mut recv_slots: Vec<Vec<u32>> = vec![Vec::new(); k];
        for q in 0..k {
            if q == rank {
                continue;
            }
            // Which of q's nodes do we receive? Exactly the q-owned nodes in
            // our halo. q sends them ascending by global id; our halo is
            // ascending too, so iterate our halo filtered by owner == q.
            for &g in &halo {
                if assignment[g as usize] == q {
                    recv_slots[q].push(halo_pos(g));
                }
            }
        }

        // Aggregation structure over the extended space + central/marginal
        // split, streamed straight into CSR form (no per-row Vec churn).
        let local_entries: usize = local_nodes
            .iter()
            .map(|&g| graph.neighbors(g as usize).len())
            .sum();
        let mut builder =
            AggGraphBuilder::with_capacity(num_local + halo.len(), num_local, local_entries);
        let mut central = Vec::new();
        let mut marginal = Vec::new();
        for (li, &g) in local_nodes.iter().enumerate() {
            let mut has_remote = false;
            for &u in graph.neighbors(g as usize) {
                let c = coeff(u as usize, g as usize);
                if assignment[u as usize] == rank {
                    builder.push_entry(local_index[u as usize], c);
                } else {
                    has_remote = true;
                    builder.push_entry(num_local as u32 + halo_pos(u), c);
                }
            }
            builder.finish_row();
            if has_remote {
                marginal.push(li as u32);
            } else {
                central.push(li as u32);
            }
        }
        let agg = builder.build();

        // Receiver-side sum of squared coefficients for each sent message.
        // For message (local node g -> device q): sum over q's local nodes v
        // adjacent to g of coeff(g, v)^2.
        let mut send_alpha_sq: Vec<Vec<f64>> = vec![Vec::new(); k];
        for q in 0..k {
            for &li in &send_sets[q] {
                let g = local_nodes[li as usize] as usize;
                let mut s = 0.0f64;
                for &v in graph.neighbors(g) {
                    if assignment[v as usize] == q {
                        let c = coeff(g, v as usize) as f64;
                        s += c * c;
                    }
                }
                send_alpha_sq[q].push(s);
            }
        }

        // Local features / labels / masks.
        let idx: Vec<usize> = local_nodes.iter().map(|&g| g as usize).collect();
        let features = dataset.features.gather_rows(&idx);
        let labels = match &dataset.labels {
            Labels::Single(v) => LocalLabels::Single(idx.iter().map(|&g| v[g]).collect()),
            Labels::Multi(m) => LocalLabels::Multi(m.gather_rows(&idx)),
        };
        let pick = |mask: &[bool]| -> Vec<bool> { idx.iter().map(|&g| mask[g]).collect() };

        parts.push(DevicePartition {
            rank,
            num_parts: k,
            local_nodes,
            halo_nodes: halo,
            send_sets,
            recv_slots,
            send_alpha_sq,
            agg,
            central,
            marginal,
            features,
            train_mask: pick(&dataset.train_mask),
            val_mask: pick(&dataset.val_mask),
            test_mask: pick(&dataset.test_mask),
            labels,
            global,
            part_sizes: owned.iter().map(Vec::len).collect(),
        });
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::DatasetSpec;
    use tensor::Rng;

    fn tiny_setup(k: usize) -> (Dataset, Partition, Vec<DevicePartition>) {
        let ds = DatasetSpec::tiny().generate(11);
        let mut rng = Rng::seed_from(12);
        let part = graph::partition::metis_like(&ds.graph, k, &mut rng);
        let parts = build_partitions(&ds, &part, ConvKind::Gcn);
        (ds, part, parts)
    }

    #[test]
    fn partitions_cover_all_nodes() {
        let (ds, _, parts) = tiny_setup(3);
        let total: usize = parts.iter().map(DevicePartition::num_local).sum();
        assert_eq!(total, ds.num_nodes());
        // Every global node appears exactly once as a local node.
        let mut seen = vec![false; ds.num_nodes()];
        for p in &parts {
            for &g in &p.local_nodes {
                assert!(!seen[g as usize], "node {g} owned twice");
                seen[g as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn send_and_recv_sets_are_consistent() {
        let (_, _, parts) = tiny_setup(3);
        for p in &parts {
            for q in 0..parts.len() {
                if q == p.rank {
                    assert!(p.send_sets[q].is_empty());
                    assert!(p.recv_slots[q].is_empty());
                    continue;
                }
                // p receives from q exactly what q sends to p.
                let sent: Vec<u32> = parts[q].send_sets[p.rank]
                    .iter()
                    .map(|&li| parts[q].local_nodes[li as usize])
                    .collect();
                let received: Vec<u32> = p.recv_slots[q]
                    .iter()
                    .map(|&h| p.halo_nodes[h as usize])
                    .collect();
                assert_eq!(sent, received, "pair ({}, {q})", p.rank);
            }
        }
    }

    #[test]
    fn halo_is_union_of_incoming() {
        let (_, _, parts) = tiny_setup(4);
        for p in &parts {
            let mut incoming: Vec<u32> = (0..parts.len())
                .filter(|&q| q != p.rank)
                .flat_map(|q| {
                    p.recv_slots[q]
                        .iter()
                        .map(|&h| p.halo_nodes[h as usize])
                        .collect::<Vec<_>>()
                })
                .collect();
            incoming.sort_unstable();
            assert_eq!(incoming, p.halo_nodes, "rank {}", p.rank);
        }
    }

    #[test]
    fn central_marginal_partition_local_space() {
        let (_, _, parts) = tiny_setup(3);
        for p in &parts {
            let mut all: Vec<u32> = p.central.iter().chain(&p.marginal).copied().collect();
            all.sort_unstable();
            let expect: Vec<u32> = (0..p.num_local() as u32).collect();
            assert_eq!(all, expect);
        }
    }

    #[test]
    fn central_nodes_reference_only_local_slots() {
        let (_, _, parts) = tiny_setup(3);
        for p in &parts {
            // Aggregating an extended matrix whose halo rows are poisoned
            // must not change central rows.
            let mut x = Matrix::zeros(p.num_ext(), 4);
            for i in 0..p.num_local() {
                for j in 0..4 {
                    x.set(i, j, (i + j) as f32);
                }
            }
            let clean = p.agg.aggregate_rows(&x, &p.central);
            for h in p.num_local()..p.num_ext() {
                for j in 0..4 {
                    x.set(h, j, 1e9);
                }
            }
            let poisoned = p.agg.aggregate_rows(&x, &p.central);
            assert_eq!(clean, poisoned, "central rows touched halo slots");
        }
    }

    #[test]
    fn distributed_aggregation_matches_full_graph() {
        // Fill halos with true values and compare against the single-graph
        // aggregation: the distributed decomposition must be exact.
        let (ds, part, parts) = tiny_setup(3);
        let g = ds.graph.with_self_loops();
        let full_agg = AggGraph::full_graph_gcn(&g);
        let mut rng = Rng::seed_from(99);
        let x = Matrix::from_fn(ds.num_nodes(), 5, |_, _| rng.uniform(-1.0, 1.0));
        let z_full = full_agg.aggregate(&x);
        for p in &parts {
            // Build the extended input from global data.
            let mut xe = Matrix::zeros(p.num_ext(), 5);
            for (li, &gid) in p.local_nodes.iter().enumerate() {
                xe.row_mut(li).copy_from_slice(x.row(gid as usize));
            }
            for (h, &gid) in p.halo_nodes.iter().enumerate() {
                xe.row_mut(p.num_local() + h)
                    .copy_from_slice(x.row(gid as usize));
            }
            let z_local = p.agg.aggregate(&xe);
            for (li, &gid) in p.local_nodes.iter().enumerate() {
                for j in 0..5 {
                    assert!(
                        (z_local.at(li, j) - z_full.at(gid as usize, j)).abs() < 1e-4,
                        "rank {} node {gid} dim {j}",
                        p.rank
                    );
                }
            }
        }
        let _ = part;
    }

    #[test]
    fn send_alpha_sq_positive_and_aligned() {
        let (_, _, parts) = tiny_setup(3);
        for p in &parts {
            for q in 0..parts.len() {
                assert_eq!(p.send_alpha_sq[q].len(), p.send_sets[q].len());
                for &s in &p.send_alpha_sq[q] {
                    assert!(s > 0.0, "sent message must have a receiver coefficient");
                }
            }
        }
    }

    #[test]
    fn gather_send_rows_extracts_boundary_messages() {
        let (_, _, parts) = tiny_setup(2);
        let p = &parts[0];
        let x = Matrix::from_fn(p.num_local(), 3, |i, j| (i * 3 + j) as f32);
        let q = 1;
        let msgs = p.gather_send_rows(&x, q);
        assert_eq!(msgs.rows(), p.send_sets[q].len());
        for (k, &li) in p.send_sets[q].iter().enumerate() {
            assert_eq!(msgs.row(k), x.row(li as usize));
        }
    }

    #[test]
    fn sage_partitions_use_plain_graph() {
        let ds = DatasetSpec::tiny().generate(13);
        let mut rng = Rng::seed_from(14);
        let part = graph::partition::metis_like(&ds.graph, 2, &mut rng);
        let sage = build_partitions(&ds, &part, ConvKind::Sage);
        let gcn = build_partitions(&ds, &part, ConvKind::Gcn);
        // GCN adds self loops => at least as many aggregation entries.
        for (s, g) in sage.iter().zip(&gcn) {
            assert!(g.agg.num_entries() >= s.agg.num_entries() + s.num_local());
        }
    }

    #[test]
    fn global_info_counts() {
        let (ds, _, parts) = tiny_setup(2);
        let gi = parts[0].global;
        assert_eq!(gi.num_nodes, ds.num_nodes());
        assert_eq!(gi.num_train, ds.train_mask.iter().filter(|&&b| b).count());
        let local_train: usize = parts
            .iter()
            .map(|p| p.train_mask.iter().filter(|&&b| b).count())
            .sum();
        assert_eq!(local_train, gi.num_train);
    }
}
