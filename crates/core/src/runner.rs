//! Experiment runner: builds the dataset and partitions, drives the device
//! programs on the discrete-event cluster core and combines their records
//! into a [`RunResult`].

use crate::config::{ExperimentConfig, Method};
use crate::decompose::build_partitions;
use crate::error::Error;
use crate::metrics::{DeviceEpochRecord, EpochMetrics, MetricParts, RunResult};
use crate::telemetry::TelemetryLog;
use crate::trainers::DeviceTrainer;
use comm::telemetry::Event;
use comm::Cluster;
use graph::Task;
use obs::critpath::{CritPathReport, FlightLog, Schedule};
use tensor::Rng;

/// Which cluster execution core drives the device trainers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Backend {
    /// The deterministic discrete-event scheduler (the default).
    Event,
    /// The retired thread-per-device backend, kept one release for
    /// cross-backend equivalence tests.
    #[cfg(feature = "thread-backend")]
    Thread,
}

/// Runs one experiment end-to-end on the discrete-event cluster core and
/// returns its result.
///
/// Deterministic given `cfg.seed`: the numerics, the simulated times, and
/// the metric snapshots are exactly reproducible.
///
/// # Errors
///
/// [`Error::InvalidConfig`] when [`ExperimentConfig::validate`] rejects the
/// configuration, [`Error::Partition`] when the graph cannot be spread over
/// the requested device count, [`Error::Cluster`] when a simulated device
/// dies mid-run, and [`Error::Sanitizer`] when a sanitized run
/// (`TrainingConfig::sanitize` or `ADAQP_SAN=1`) observes a parallel-kernel
/// determinism violation.
pub fn run_experiment(cfg: &ExperimentConfig) -> Result<RunResult, Error> {
    run_experiment_on(cfg, Backend::Event).map(|(result, _)| result)
}

/// The causal profile of one run: the post-run critical-path analysis plus
/// the raw flight log it was derived from.
///
/// Kept outside [`RunResult`] on purpose: profiling must never change the
/// result artifact, so the profile travels next to it, not inside it.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunProfile {
    /// Critical path, per-device idle attribution, and straggler ranking.
    pub report: CritPathReport,
    /// Every scheduling transition with its causal predecessor.
    pub flight: FlightLog,
}

/// [`run_experiment`] with the causal flight recorder armed: also returns
/// the [`RunProfile`] when profiling is active (`TrainingConfig::profile`
/// or `ADAQP_PROFILE=1`), `None` otherwise.
///
/// Profiling is observation-only: the returned [`RunResult`] is
/// byte-identical to an unprofiled run of the same config, and the profile
/// itself is byte-deterministic at any `ADAQP_THREADS`.
///
/// # Errors
///
/// As [`run_experiment`]; additionally [`Error::InvalidConfig`] when
/// profiling is requested on the retired thread-per-device backend, which
/// has no event DAG to record.
pub fn run_experiment_profiled(
    cfg: &ExperimentConfig,
) -> Result<(RunResult, Option<RunProfile>), Error> {
    run_experiment_on(cfg, Backend::Event)
}

/// Whether the environment forces profiling on (`ADAQP_PROFILE` set to
/// anything but empty or `0`), mirroring the `ADAQP_SAN` convention.
fn env_profile() -> bool {
    std::env::var("ADAQP_PROFILE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// The epoch-time composition rule the critical-path analyzer must mirror
/// for `method`: how [`crate::metrics::epoch_time_with_overlap`] folds a
/// device's phase sums into its epoch time.
fn schedule_for(method: Method, disable_overlap: bool) -> Schedule {
    match method {
        Method::Vanilla | Method::Sancus => Schedule::Serial,
        Method::AdaQp | Method::AdaQpUniform => {
            if disable_overlap {
                Schedule::Serial
            } else {
                Schedule::Overlapped
            }
        }
        Method::PipeGcn => Schedule::Pipelined,
    }
}

/// [`run_experiment`] on the retired thread-per-device backend.
///
/// Exists so equivalence tests can pin the event core against the old
/// execution model byte-for-byte; it will leave with the `thread-backend`
/// feature after one release.
///
/// # Errors
///
/// As [`run_experiment`].
#[cfg(feature = "thread-backend")]
pub fn run_experiment_threaded(cfg: &ExperimentConfig) -> Result<RunResult, Error> {
    run_experiment_on(cfg, Backend::Thread).map(|(result, _)| result)
}

fn run_experiment_on(
    cfg: &ExperimentConfig,
    backend: Backend,
) -> Result<(RunResult, Option<RunProfile>), Error> {
    cfg.validate()?;
    let profiling = cfg.training.profile || env_profile();
    #[cfg(feature = "thread-backend")]
    if profiling && backend == Backend::Thread {
        return Err(Error::InvalidConfig(
            "profiling needs the event scheduler's causal DAG; the thread-per-device \
             backend has none (drop --threads-backend or the profile flag)"
                .to_string(),
        ));
    }
    // Pin the kernel runtime's worker count for this run (0 = auto-detect).
    // Kernel results are byte-identical at any thread count, so this only
    // affects host wall-clock, never simulated numerics.
    tensor::par::set_threads(cfg.training.threads);
    // Arm (or disarm) the determinism sanitizer. Like the thread count this
    // is process-global; concurrent runs with different settings only change
    // how much checking happens, never any kernel's output bytes.
    tensor::san::set_sanitize(cfg.training.sanitize);
    let san_active = tensor::san::enabled();
    if san_active {
        tensor::san::reset();
    }
    let dataset = cfg.dataset.generate(cfg.seed);
    let mut rng = Rng::seed_from(cfg.seed ^ 0x5EED_CAFE);
    let n = cfg.num_devices();
    if n > dataset.num_nodes() {
        return Err(Error::Partition(format!(
            "{n} devices for a {}-node graph: every device needs at least one node",
            dataset.num_nodes()
        )));
    }
    let partition = graph::partition::try_metis_like(&dataset.graph, n, &mut rng)?;
    let parts = build_partitions(&dataset, &partition, cfg.training.conv_kind());
    let cost = cfg.cost_model();
    let multi = dataset.task == Task::MultiLabel;
    let global_train = parts[0].global.num_train;

    let train_timer = cfg.training.metrics.then(|| {
        obs::timer::ScopedTimer::start_with_labels("adaqp_phase_seconds", &[("phase", "train")])
    });
    let parts_ref = &parts;
    let cost_ref = &cost;
    // Devices read the profile switch from their TrainingConfig; fold the
    // ADAQP_PROFILE override in here so they mirror their phase charges to
    // the scheduler when the environment (not the config) armed profiling.
    let mut training = cfg.training.clone();
    training.profile = profiling;
    let training_ref = &training;
    type DeviceOutput = (Vec<DeviceEpochRecord>, Vec<Event>, Option<obs::Registry>);
    let device = |dev: comm::DeviceHandle| {
        let rank = dev.rank();
        let trainer = DeviceTrainer::new(
            dev,
            &parts_ref[rank],
            training_ref,
            cfg.method,
            cost_ref.clone(),
            cfg.seed,
        );
        trainer.run()
    };
    // The recorder carries its own cost-model copy purely to annotate
    // message departures with the theta*bytes + gamma split; the scheduler
    // itself keeps running uncosted, exactly as in an unprofiled run.
    let mut recorder = profiling.then(|| comm::FlightRecorder::new(n, Some(cost.clone())));
    let outputs: Vec<DeviceOutput> = match backend {
        Backend::Event => Cluster::try_run_fn_recorded(n, None, recorder.as_mut(), device)?.outputs,
        #[cfg(feature = "thread-backend")]
        Backend::Thread => Cluster::try_run_fn_threaded(n, device)?,
    };
    let profile = recorder.map(|rec| {
        let flight = rec.finish();
        let schedule = schedule_for(cfg.method, cfg.training.disable_overlap);
        let report = obs::critpath::analyze(&flight, schedule, n.min(8));
        RunProfile { report, flight }
    });
    let mut records = Vec::with_capacity(n);
    let mut events = Vec::with_capacity(n);
    let mut registries = Vec::with_capacity(n);
    for (recs, evs, reg) in outputs {
        records.push(recs);
        events.push(evs);
        registries.push(reg);
    }

    let mut result = combine(cfg, multi, global_train, &records);
    if cfg.training.telemetry {
        result.telemetry = Some(TelemetryLog::from_device_events(events));
    }
    if cfg.training.metrics {
        // Merge the per-device registries in rank order (deterministic:
        // counters add, gauges overwrite in that fixed order).
        let mut reg = obs::Registry::new();
        for dev_reg in registries.into_iter().flatten() {
            reg.merge(&dev_reg);
        }
        record_run_metrics(&mut reg, &result, &records);
        if let Some(p) = &profile {
            record_profile_metrics(&mut reg, &p.report);
        }
        if let Some(t) = train_timer {
            t.stop(&mut reg);
        }
        result.metrics = Some(reg.snapshot());
    }
    if san_active {
        let rep = tensor::san::report();
        if !rep.is_clean() {
            let details: Vec<String> = rep.errors.iter().map(ToString::to_string).collect();
            return Err(Error::Sanitizer(format!(
                "{} violation(s) across {} kernel launches / {} adversarial schedules: {}",
                rep.errors.len(),
                rep.kernels_checked,
                rep.schedules_checked,
                details.join("; ")
            )));
        }
    }
    Ok((result, profile))
}

/// Registers the critical-path summary as regress-exempt gauges: the
/// leading underscore keeps them out of `adaqp-regress` comparisons (host
/// timing shifts must never fail a numeric gate) while still landing in
/// the snapshot for dashboards.
fn record_profile_metrics(reg: &mut obs::Registry, report: &CritPathReport) {
    reg.gauge_set("_critpath_total_seconds", &[], report.total_seconds);
    reg.gauge_set(
        "_critpath_collective_wait_share",
        &[],
        report.collective_wait_share,
    );
    for (class, seconds) in &report.class_totals {
        reg.gauge_set("_critpath_class_seconds", &[("class", class)], *seconds);
    }
    for dev in &report.devices {
        let rank = dev.rank.to_string();
        let labels = [("rank", rank.as_str())];
        reg.gauge_set("_critpath_idle_fraction", &labels, dev.idle_fraction);
        reg.gauge_set("_critpath_busy_seconds", &labels, dev.busy_seconds);
    }
}

/// Records the cluster-level series into the merged registry: per-epoch
/// training gauges from the combined result and the kernel runtime's
/// scheduling counters (diagnostic-only — which worker served a chunk is a
/// race by design, so those never enter the default snapshot).
fn record_run_metrics(
    reg: &mut obs::Registry,
    result: &RunResult,
    records: &[Vec<DeviceEpochRecord>],
) {
    for em in &result.per_epoch {
        let epoch = em.epoch.to_string();
        let labels = [("epoch", epoch.as_str())];
        reg.gauge_set("adaqp_epoch_loss", &labels, em.loss);
        reg.gauge_set("adaqp_epoch_val_score", &labels, em.val_score);
        reg.gauge_set("adaqp_epoch_test_score", &labels, em.test_score);
        // The allreduced gradient norm is identical on every rank; report
        // rank 0's copy.
        if let Some(recs) = records.first() {
            reg.gauge_set("adaqp_epoch_grad_norm", &labels, recs[em.epoch].grad_norm);
        }
    }
    reg.gauge_set("adaqp_best_val_score", &[], result.best_val);
    reg.gauge_set("adaqp_test_at_best", &[], result.test_at_best);

    let pool = tensor::par::pool_stats();
    // Scheduling counters stay far below 2^53, so the f64 gauge is exact.
    reg.gauge_set_diag("adaqp_pool_pooled_runs", &[], pool.pooled_runs as f64);
    // Scheduling counters stay far below 2^53, so the f64 gauge is exact.
    reg.gauge_set_diag("adaqp_pool_inline_runs", &[], pool.inline_runs as f64);
    // Scheduling counters stay far below 2^53, so the f64 gauge is exact.
    reg.gauge_set_diag("adaqp_pool_tasks_executed", &[], pool.tasks_executed as f64);
    // Scheduling counters stay far below 2^53, so the f64 gauge is exact.
    reg.gauge_set_diag("adaqp_pool_idle_workers", &[], pool.idle_workers as f64);
    for (w, &tasks) in pool.worker_tasks.iter().enumerate() {
        if tasks > 0 {
            let worker = w.to_string();
            reg.gauge_set_diag(
                "adaqp_pool_worker_tasks",
                &[("worker", worker.as_str())],
                // Scheduling counters stay far below 2^53, so the f64 gauge is exact.
                tasks as f64,
            );
        }
    }
}

/// Combines per-device epoch records into cluster-level metrics.
/// `global_train` is the cluster-wide training-node count (the loss-sum
/// divisor), threaded through from partitioning so the dataset is not
/// regenerated here.
pub(crate) fn combine(
    cfg: &ExperimentConfig,
    multi: bool,
    global_train: usize,
    records: &[Vec<DeviceEpochRecord>],
) -> RunResult {
    let epochs = records.first().map_or(0, Vec::len);
    let global_train = global_train.max(1) as f64;
    let mut per_epoch = Vec::with_capacity(epochs);
    let mut total_sim = 0.0;
    let mut total_breakdown = comm::TimeBreakdown::new();
    let mut total_bytes = 0usize;
    let mut best_val = f64::NEG_INFINITY;
    let mut test_at_best = 0.0;
    for e in 0..epochs {
        let mut loss_sum = 0.0;
        let mut metric = MetricParts::default();
        let mut bytes = 0usize;
        let mut slowest = 0.0f64;
        let mut slowest_tb = comm::TimeBreakdown::new();
        for dev_records in records {
            let r = &dev_records[e];
            loss_sum += r.loss_sum;
            metric.merge(&r.metric);
            bytes += r.bytes_sent;
            let t = crate::metrics::epoch_time_with_overlap(
                cfg.method,
                cfg.training.disable_overlap,
                &r.breakdown,
            );
            if t >= slowest {
                slowest = t;
                slowest_tb = r.breakdown;
            }
        }
        let val_score = MetricParts::score(&metric.val, multi);
        let test_score = MetricParts::score(&metric.test, multi);
        if val_score > best_val {
            best_val = val_score;
            test_at_best = test_score;
        }
        total_sim += slowest;
        total_breakdown += slowest_tb;
        total_bytes += bytes;
        per_epoch.push(EpochMetrics {
            epoch: e,
            loss: loss_sum / global_train,
            val_score,
            test_score,
            sim_seconds: slowest,
            breakdown: slowest_tb,
            bytes_sent: bytes,
        });
    }
    let throughput = if total_sim > 0.0 {
        epochs as f64 / total_sim
    } else {
        0.0
    };
    RunResult {
        method: cfg.method.name().to_string(),
        dataset: cfg.dataset.name.clone(),
        partition: cfg.partition_label(),
        per_epoch,
        best_val: best_val.max(0.0),
        test_at_best,
        total_sim_seconds: total_sim,
        throughput,
        total_breakdown,
        total_bytes,
        telemetry: None,
        metrics: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Method, TrainingConfig};
    use graph::DatasetSpec;

    fn quick_cfg(method: Method, epochs: usize) -> ExperimentConfig {
        ExperimentConfig {
            dataset: DatasetSpec::tiny(),
            machines: 1,
            devices_per_machine: 2,
            method,
            training: TrainingConfig {
                epochs,
                hidden: 16,
                num_layers: 2,
                dropout: 0.0,
                reassign_period: 2,
                ..TrainingConfig::default()
            },
            seed: 31,
        }
    }

    #[test]
    fn vanilla_runs_and_learns_something() {
        let result = run_experiment(&quick_cfg(Method::Vanilla, 10)).expect("valid config");
        assert_eq!(result.per_epoch.len(), 10);
        assert!(result.total_sim_seconds > 0.0);
        assert!(result.throughput > 0.0);
        // Loss should drop substantially on the easy tiny dataset.
        let first = result.per_epoch[0].loss;
        let last = result.per_epoch[9].loss;
        assert!(last < first, "loss did not drop: {first} -> {last}");
        assert!(result.best_val > 0.4, "val score {}", result.best_val);
        // Telemetry is opt-in: absent by default.
        assert!(result.telemetry.is_none());
    }

    #[test]
    fn adaqp_runs_with_reassignment() {
        let result = run_experiment(&quick_cfg(Method::AdaQp, 6)).expect("valid config");
        assert_eq!(result.per_epoch.len(), 6);
        // Quantization time is charged after epoch 0.
        assert!(result.total_breakdown.quant > 0.0);
        // Assigner solve time is charged on assignment epochs.
        assert!(result.total_breakdown.solve > 0.0);
        assert!(result.best_val > 0.4, "val score {}", result.best_val);
    }

    #[test]
    fn stream_quant_same_results_lower_time() {
        // The pipelined quantize+send changes only the time accounting:
        // losses, scores, and bytes are bit-identical to the plain
        // quantized run, while comm + quant time can only shrink (each
        // destination's pipeline is bounded by its serial encode +
        // transfer total).
        let base = quick_cfg(Method::AdaQp, 6);
        let mut streamed = base.clone();
        streamed.training.stream_quant = true;
        let a = run_experiment(&base).expect("valid config");
        let b = run_experiment(&streamed).expect("valid config");
        assert_eq!(a.per_epoch.len(), b.per_epoch.len());
        for (ea, eb) in a.per_epoch.iter().zip(&b.per_epoch) {
            assert_eq!(ea.loss.to_bits(), eb.loss.to_bits(), "loss diverged");
            assert_eq!(ea.val_score.to_bits(), eb.val_score.to_bits());
        }
        assert_eq!(a.total_bytes, b.total_bytes, "wire bytes diverged");
        let serial = a.total_breakdown.comm + a.total_breakdown.quant;
        let pipelined = b.total_breakdown.comm + b.total_breakdown.quant;
        assert!(
            pipelined < serial,
            "streaming did not reduce comm+quant: {pipelined} vs {serial}"
        );
    }

    #[test]
    fn stream_quant_rejects_grouped_and_error_feedback() {
        let mut cfg = quick_cfg(Method::AdaQp, 2);
        cfg.training.stream_quant = true;
        cfg.training.grouped_wire = true;
        assert!(run_experiment(&cfg).is_err());
        cfg.training.grouped_wire = false;
        cfg.training.error_feedback = true;
        assert!(run_experiment(&cfg).is_err());
        cfg.training.error_feedback = false;
        assert!(run_experiment(&cfg).is_ok());
    }

    #[test]
    fn adaqp_moves_fewer_bytes_than_vanilla() {
        let v = run_experiment(&quick_cfg(Method::Vanilla, 6)).expect("valid config");
        let a = run_experiment(&quick_cfg(Method::AdaQp, 6)).expect("valid config");
        assert!(
            (a.total_bytes as f64) < 0.8 * v.total_bytes as f64,
            "AdaQP bytes {} vs Vanilla {}",
            a.total_bytes,
            v.total_bytes
        );
    }

    #[test]
    fn all_methods_complete() {
        for method in Method::ALL {
            let r = run_experiment(&quick_cfg(method, 3)).expect("valid config");
            assert_eq!(r.per_epoch.len(), 3, "{method} failed");
            assert!(r.per_epoch.iter().all(|e| e.loss.is_finite()));
        }
    }

    #[test]
    fn single_device_degenerates_gracefully() {
        let mut cfg = quick_cfg(Method::Vanilla, 3);
        cfg.devices_per_machine = 1;
        let r = run_experiment(&cfg).expect("valid config");
        assert_eq!(r.per_epoch.len(), 3);
        // No peers => no communication bytes.
        assert_eq!(r.total_bytes, 0);
    }

    #[test]
    fn invalid_configs_error_without_panicking() {
        let mut zero_epochs = quick_cfg(Method::Vanilla, 3);
        zero_epochs.training.epochs = 0;
        assert!(matches!(
            run_experiment(&zero_epochs),
            Err(Error::InvalidConfig(_))
        ));

        let mut no_devices = quick_cfg(Method::Vanilla, 3);
        no_devices.machines = 0;
        assert!(matches!(
            run_experiment(&no_devices),
            Err(Error::InvalidConfig(_))
        ));

        let mut too_many_devices = quick_cfg(Method::Vanilla, 1);
        too_many_devices.dataset.num_nodes = 3;
        too_many_devices.machines = 4;
        assert!(matches!(
            run_experiment(&too_many_devices),
            Err(Error::Partition(_))
        ));
    }

    #[test]
    fn profiling_is_observation_only_and_reports_the_path() {
        let plain = quick_cfg(Method::Vanilla, 4);
        let mut profiled = plain.clone();
        profiled.training.profile = true;
        let bare = run_experiment(&plain).expect("valid config");
        let (result, profile) = run_experiment_profiled(&profiled).expect("valid config");
        // Observation-only: the result artifact is unchanged by recording.
        assert_eq!(bare, result, "profiling changed the run result");
        let profile = profile.expect("profile requested");
        assert!(profile.flight.num_events() > 0);
        let report = &profile.report;
        assert_eq!(report.schedule, "serial");
        assert_eq!(report.num_devices, 2);
        assert_eq!(report.epochs, 4);
        // The classified critical path reconstructs the epoch-time total.
        assert_eq!(
            report.total_seconds.to_bits(),
            result.total_sim_seconds.to_bits(),
            "critical path {} vs simulated {}",
            report.total_seconds,
            result.total_sim_seconds
        );
        assert!(!report.segments.is_empty());
        assert!(!report.stragglers.is_empty());
    }

    #[test]
    fn profile_stays_none_when_off() {
        let (_, profile) =
            run_experiment_profiled(&quick_cfg(Method::Vanilla, 2)).expect("valid config");
        assert!(profile.is_none());
    }

    #[test]
    fn profiled_metrics_gain_exempt_gauges_without_disturbing_the_rest() {
        let mut cfg = quick_cfg(Method::Vanilla, 3);
        cfg.training.metrics = true;
        let plain = run_experiment(&cfg).expect("valid config");
        cfg.training.profile = true;
        let (profiled, profile) = run_experiment_profiled(&cfg).expect("valid config");
        assert!(profile.is_some());
        let snap = profiled.metrics.as_ref().expect("metrics requested");
        assert!(snap.metrics.keys().any(|k| k.starts_with("_critpath_")));
        // Dropping the underscore-prefixed series recovers the plain snapshot.
        let plain_snap = plain.metrics.as_ref().expect("metrics requested");
        let visible: Vec<_> = snap
            .metrics
            .iter()
            .filter(|(k, _)| !k.starts_with('_'))
            .collect();
        let plain_visible: Vec<_> = plain_snap.metrics.iter().collect();
        assert_eq!(
            visible, plain_visible,
            "profiling leaked into gated metrics"
        );
    }

    #[cfg(feature = "thread-backend")]
    #[test]
    fn profiling_rejects_the_thread_backend() {
        let mut cfg = quick_cfg(Method::Vanilla, 2);
        cfg.training.profile = true;
        assert!(matches!(
            run_experiment_threaded(&cfg),
            Err(Error::InvalidConfig(_))
        ));
    }

    #[test]
    fn metrics_opt_in_attaches_snapshot() {
        let mut cfg = quick_cfg(Method::AdaQp, 4);
        cfg.training.metrics = true;
        let r = run_experiment(&cfg).expect("valid config");
        let snap = r.metrics.as_ref().expect("metrics requested");
        // Per-pair comm volume from the comm layer.
        assert!(snap
            .metrics
            .keys()
            .any(|k| k.starts_with("adaqp_comm_sent_bytes_total")));
        // Width-tagged halo volume and per-width quant error from the trainer.
        assert!(snap
            .metrics
            .keys()
            .any(|k| k.starts_with("adaqp_halo_sent_bytes_total")));
        assert!(snap
            .metrics
            .keys()
            .any(|k| k.starts_with("adaqp_quant_sq_error_sum")));
        // Solver stats, recorded on the master only.
        let iters = snap
            .get("adaqp_solver_iterations_total", &[])
            .expect("solver ran");
        assert!(iters.value > 0.0);
        // Per-epoch training gauges.
        for e in 0..4 {
            let labels = [("epoch", e.to_string())];
            let labels: Vec<(&str, &str)> = labels.iter().map(|(k, v)| (*k, v.as_str())).collect();
            assert!(snap.get("adaqp_epoch_loss", &labels).is_some());
            assert!(snap.get("adaqp_epoch_val_score", &labels).is_some());
            let gn = snap
                .get("adaqp_epoch_grad_norm", &labels)
                .expect("grad norm");
            assert!(gn.value > 0.0);
        }
        // Diagnostic pool series never enter the default snapshot.
        assert!(!snap.metrics.keys().any(|k| k.starts_with("adaqp_pool_")));
        // Off by default.
        let r2 = run_experiment(&quick_cfg(Method::AdaQp, 3)).expect("valid config");
        assert!(r2.metrics.is_none());
    }

    #[test]
    fn telemetry_opt_in_attaches_log() {
        let mut cfg = quick_cfg(Method::AdaQp, 3);
        cfg.training.telemetry = true;
        let r = run_experiment(&cfg).expect("valid config");
        let log = r.telemetry.as_ref().expect("telemetry requested");
        assert_eq!(log.devices.len(), cfg.num_devices());
        assert!(log.num_events() > 0);
        // Events reconstruct the reported totals.
        let agg = log.aggregate();
        let (total, tb) = agg.cluster_totals(cfg.method, cfg.training.disable_overlap);
        assert!((total - r.total_sim_seconds).abs() <= 1e-9 * r.total_sim_seconds.max(1.0));
        assert!((tb.comm - r.total_breakdown.comm).abs() <= 1e-9);
        assert!((tb.solve - r.total_breakdown.solve).abs() <= 1e-9);
    }
}
