//! Experiment runner: builds the dataset and partitions, spawns the device
//! threads and combines their records into a [`RunResult`].

use crate::config::ExperimentConfig;
use crate::decompose::build_partitions;
use crate::metrics::{DeviceEpochRecord, EpochMetrics, MetricParts, RunResult};
use crate::trainers::DeviceTrainer;
use comm::Cluster;
use graph::Task;
use tensor::Rng;

/// Runs one experiment end-to-end and returns its result.
///
/// Deterministic given `cfg.seed` up to kernel-time measurement noise (the
/// numerics are exactly reproducible; only the simulated *compute* charges
/// vary with machine load).
pub fn run_experiment(cfg: &ExperimentConfig) -> RunResult {
    let dataset = cfg.dataset.generate(cfg.seed);
    let mut rng = Rng::seed_from(cfg.seed ^ 0x5EED_CAFE);
    let n = cfg.num_devices();
    let partition = graph::partition::metis_like(&dataset.graph, n, &mut rng);
    let parts = build_partitions(&dataset, &partition, cfg.training.conv_kind());
    let cost = cfg.cost_model();
    let multi = dataset.task == Task::MultiLabel;

    let parts_ref = &parts;
    let cost_ref = &cost;
    let records: Vec<Vec<DeviceEpochRecord>> = Cluster::run(n, |dev| {
        let rank = dev.rank();
        let trainer = DeviceTrainer::new(
            dev,
            &parts_ref[rank],
            &cfg.training,
            cfg.method,
            cost_ref.clone(),
            cfg.seed,
        );
        trainer.run()
    });

    combine(cfg, multi, dataset.num_nodes(), &records)
}

/// Combines per-device epoch records into cluster-level metrics.
pub(crate) fn combine(
    cfg: &ExperimentConfig,
    multi: bool,
    _num_nodes: usize,
    records: &[Vec<DeviceEpochRecord>],
) -> RunResult {
    let epochs = records.first().map_or(0, Vec::len);
    let global_train: f64 = {
        // loss_sum is already a per-node sum; recover the divisor from the
        // dataset masks via the records themselves is impossible, so use the
        // config's dataset spec deterministically.
        let ds = cfg.dataset.generate(cfg.seed);
        ds.train_mask.iter().filter(|&&b| b).count().max(1) as f64
    };
    let mut per_epoch = Vec::with_capacity(epochs);
    let mut total_sim = 0.0;
    let mut total_breakdown = comm::TimeBreakdown::new();
    let mut total_bytes = 0usize;
    let mut best_val = f64::NEG_INFINITY;
    let mut test_at_best = 0.0;
    for e in 0..epochs {
        let mut loss_sum = 0.0;
        let mut metric = MetricParts::default();
        let mut bytes = 0usize;
        let mut slowest = 0.0f64;
        let mut slowest_tb = comm::TimeBreakdown::new();
        for dev_records in records {
            let r = &dev_records[e];
            loss_sum += r.loss_sum;
            metric.merge(&r.metric);
            bytes += r.bytes_sent;
            let t = crate::metrics::epoch_time_with_overlap(
                cfg.method,
                cfg.training.disable_overlap,
                &r.breakdown,
            );
            if t >= slowest {
                slowest = t;
                slowest_tb = r.breakdown;
            }
        }
        let val_score = MetricParts::score(&metric.val, multi);
        let test_score = MetricParts::score(&metric.test, multi);
        if val_score > best_val {
            best_val = val_score;
            test_at_best = test_score;
        }
        total_sim += slowest;
        total_breakdown += slowest_tb;
        total_bytes += bytes;
        per_epoch.push(EpochMetrics {
            epoch: e,
            loss: loss_sum / global_train,
            val_score,
            test_score,
            sim_seconds: slowest,
            breakdown: slowest_tb,
            bytes_sent: bytes,
        });
    }
    let throughput = if total_sim > 0.0 {
        epochs as f64 / total_sim
    } else {
        0.0
    };
    RunResult {
        method: cfg.method.name().to_string(),
        dataset: cfg.dataset.name.clone(),
        partition: cfg.partition_label(),
        per_epoch,
        best_val: best_val.max(0.0),
        test_at_best,
        total_sim_seconds: total_sim,
        throughput,
        total_breakdown,
        total_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Method, TrainingConfig};
    use graph::DatasetSpec;

    fn quick_cfg(method: Method, epochs: usize) -> ExperimentConfig {
        ExperimentConfig {
            dataset: DatasetSpec::tiny(),
            machines: 1,
            devices_per_machine: 2,
            method,
            training: TrainingConfig {
                epochs,
                hidden: 16,
                num_layers: 2,
                dropout: 0.0,
                reassign_period: 2,
                ..TrainingConfig::default()
            },
            seed: 31,
        }
    }

    #[test]
    fn vanilla_runs_and_learns_something() {
        let result = run_experiment(&quick_cfg(Method::Vanilla, 10));
        assert_eq!(result.per_epoch.len(), 10);
        assert!(result.total_sim_seconds > 0.0);
        assert!(result.throughput > 0.0);
        // Loss should drop substantially on the easy tiny dataset.
        let first = result.per_epoch[0].loss;
        let last = result.per_epoch[9].loss;
        assert!(last < first, "loss did not drop: {first} -> {last}");
        assert!(result.best_val > 0.4, "val score {}", result.best_val);
    }

    #[test]
    fn adaqp_runs_with_reassignment() {
        let result = run_experiment(&quick_cfg(Method::AdaQp, 6));
        assert_eq!(result.per_epoch.len(), 6);
        // Quantization time is charged after epoch 0.
        assert!(result.total_breakdown.quant > 0.0);
        // Assigner solve time is charged on assignment epochs.
        assert!(result.total_breakdown.solve > 0.0);
        assert!(result.best_val > 0.4, "val score {}", result.best_val);
    }

    #[test]
    fn adaqp_moves_fewer_bytes_than_vanilla() {
        let v = run_experiment(&quick_cfg(Method::Vanilla, 6));
        let a = run_experiment(&quick_cfg(Method::AdaQp, 6));
        assert!(
            (a.total_bytes as f64) < 0.8 * v.total_bytes as f64,
            "AdaQP bytes {} vs Vanilla {}",
            a.total_bytes,
            v.total_bytes
        );
    }

    #[test]
    fn all_methods_complete() {
        for method in Method::ALL {
            let r = run_experiment(&quick_cfg(method, 3));
            assert_eq!(r.per_epoch.len(), 3, "{method} failed");
            assert!(r.per_epoch.iter().all(|e| e.loss.is_finite()));
        }
    }

    #[test]
    fn single_device_degenerates_gracefully() {
        let mut cfg = quick_cfg(Method::Vanilla, 3);
        cfg.devices_per_machine = 1;
        let r = run_experiment(&cfg);
        assert_eq!(r.per_epoch.len(), 3);
        // No peers => no communication bytes.
        assert_eq!(r.total_bytes, 0);
    }
}
