//! Experiment runner: builds the dataset and partitions, spawns the device
//! threads and combines their records into a [`RunResult`].

use crate::config::ExperimentConfig;
use crate::decompose::build_partitions;
use crate::error::Error;
use crate::metrics::{DeviceEpochRecord, EpochMetrics, MetricParts, RunResult};
use crate::telemetry::TelemetryLog;
use crate::trainers::DeviceTrainer;
use comm::telemetry::Event;
use comm::Cluster;
use graph::Task;
use tensor::Rng;

/// Runs one experiment end-to-end and returns its result.
///
/// Deterministic given `cfg.seed` up to kernel-time measurement noise (the
/// numerics are exactly reproducible; only the simulated *compute* charges
/// vary with machine load).
///
/// # Errors
///
/// [`Error::InvalidConfig`] when [`ExperimentConfig::validate`] rejects the
/// configuration, [`Error::Partition`] when the graph cannot be spread over
/// the requested device count, and [`Error::Cluster`] when a simulated
/// device thread dies mid-run.
pub fn run_experiment(cfg: &ExperimentConfig) -> Result<RunResult, Error> {
    cfg.validate()?;
    // Pin the kernel runtime's worker count for this run (0 = auto-detect).
    // Kernel results are byte-identical at any thread count, so this only
    // affects host wall-clock, never simulated numerics.
    tensor::par::set_threads(cfg.training.threads);
    let dataset = cfg.dataset.generate(cfg.seed);
    let mut rng = Rng::seed_from(cfg.seed ^ 0x5EED_CAFE);
    let n = cfg.num_devices();
    if n > dataset.num_nodes() {
        return Err(Error::Partition(format!(
            "{n} devices for a {}-node graph: every device needs at least one node",
            dataset.num_nodes()
        )));
    }
    let partition = graph::partition::try_metis_like(&dataset.graph, n, &mut rng)?;
    let parts = build_partitions(&dataset, &partition, cfg.training.conv_kind());
    let cost = cfg.cost_model();
    let multi = dataset.task == Task::MultiLabel;
    let global_train = parts[0].global.num_train;

    let parts_ref = &parts;
    let cost_ref = &cost;
    let outputs: Vec<(Vec<DeviceEpochRecord>, Vec<Event>)> = Cluster::try_run(n, |dev| {
        let rank = dev.rank();
        let trainer = DeviceTrainer::new(
            dev,
            &parts_ref[rank],
            &cfg.training,
            cfg.method,
            cost_ref.clone(),
            cfg.seed,
        );
        trainer.run()
    })?;
    let mut records = Vec::with_capacity(n);
    let mut events = Vec::with_capacity(n);
    for (recs, evs) in outputs {
        records.push(recs);
        events.push(evs);
    }

    let mut result = combine(cfg, multi, global_train, &records);
    if cfg.training.telemetry {
        result.telemetry = Some(TelemetryLog::from_device_events(events));
    }
    Ok(result)
}

/// Combines per-device epoch records into cluster-level metrics.
/// `global_train` is the cluster-wide training-node count (the loss-sum
/// divisor), threaded through from partitioning so the dataset is not
/// regenerated here.
pub(crate) fn combine(
    cfg: &ExperimentConfig,
    multi: bool,
    global_train: usize,
    records: &[Vec<DeviceEpochRecord>],
) -> RunResult {
    let epochs = records.first().map_or(0, Vec::len);
    let global_train = global_train.max(1) as f64;
    let mut per_epoch = Vec::with_capacity(epochs);
    let mut total_sim = 0.0;
    let mut total_breakdown = comm::TimeBreakdown::new();
    let mut total_bytes = 0usize;
    let mut best_val = f64::NEG_INFINITY;
    let mut test_at_best = 0.0;
    for e in 0..epochs {
        let mut loss_sum = 0.0;
        let mut metric = MetricParts::default();
        let mut bytes = 0usize;
        let mut slowest = 0.0f64;
        let mut slowest_tb = comm::TimeBreakdown::new();
        for dev_records in records {
            let r = &dev_records[e];
            loss_sum += r.loss_sum;
            metric.merge(&r.metric);
            bytes += r.bytes_sent;
            let t = crate::metrics::epoch_time_with_overlap(
                cfg.method,
                cfg.training.disable_overlap,
                &r.breakdown,
            );
            if t >= slowest {
                slowest = t;
                slowest_tb = r.breakdown;
            }
        }
        let val_score = MetricParts::score(&metric.val, multi);
        let test_score = MetricParts::score(&metric.test, multi);
        if val_score > best_val {
            best_val = val_score;
            test_at_best = test_score;
        }
        total_sim += slowest;
        total_breakdown += slowest_tb;
        total_bytes += bytes;
        per_epoch.push(EpochMetrics {
            epoch: e,
            loss: loss_sum / global_train,
            val_score,
            test_score,
            sim_seconds: slowest,
            breakdown: slowest_tb,
            bytes_sent: bytes,
        });
    }
    let throughput = if total_sim > 0.0 {
        epochs as f64 / total_sim
    } else {
        0.0
    };
    RunResult {
        method: cfg.method.name().to_string(),
        dataset: cfg.dataset.name.clone(),
        partition: cfg.partition_label(),
        per_epoch,
        best_val: best_val.max(0.0),
        test_at_best,
        total_sim_seconds: total_sim,
        throughput,
        total_breakdown,
        total_bytes,
        telemetry: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Method, TrainingConfig};
    use graph::DatasetSpec;

    fn quick_cfg(method: Method, epochs: usize) -> ExperimentConfig {
        ExperimentConfig {
            dataset: DatasetSpec::tiny(),
            machines: 1,
            devices_per_machine: 2,
            method,
            training: TrainingConfig {
                epochs,
                hidden: 16,
                num_layers: 2,
                dropout: 0.0,
                reassign_period: 2,
                ..TrainingConfig::default()
            },
            seed: 31,
        }
    }

    #[test]
    fn vanilla_runs_and_learns_something() {
        let result = run_experiment(&quick_cfg(Method::Vanilla, 10)).expect("valid config");
        assert_eq!(result.per_epoch.len(), 10);
        assert!(result.total_sim_seconds > 0.0);
        assert!(result.throughput > 0.0);
        // Loss should drop substantially on the easy tiny dataset.
        let first = result.per_epoch[0].loss;
        let last = result.per_epoch[9].loss;
        assert!(last < first, "loss did not drop: {first} -> {last}");
        assert!(result.best_val > 0.4, "val score {}", result.best_val);
        // Telemetry is opt-in: absent by default.
        assert!(result.telemetry.is_none());
    }

    #[test]
    fn adaqp_runs_with_reassignment() {
        let result = run_experiment(&quick_cfg(Method::AdaQp, 6)).expect("valid config");
        assert_eq!(result.per_epoch.len(), 6);
        // Quantization time is charged after epoch 0.
        assert!(result.total_breakdown.quant > 0.0);
        // Assigner solve time is charged on assignment epochs.
        assert!(result.total_breakdown.solve > 0.0);
        assert!(result.best_val > 0.4, "val score {}", result.best_val);
    }

    #[test]
    fn adaqp_moves_fewer_bytes_than_vanilla() {
        let v = run_experiment(&quick_cfg(Method::Vanilla, 6)).expect("valid config");
        let a = run_experiment(&quick_cfg(Method::AdaQp, 6)).expect("valid config");
        assert!(
            (a.total_bytes as f64) < 0.8 * v.total_bytes as f64,
            "AdaQP bytes {} vs Vanilla {}",
            a.total_bytes,
            v.total_bytes
        );
    }

    #[test]
    fn all_methods_complete() {
        for method in Method::ALL {
            let r = run_experiment(&quick_cfg(method, 3)).expect("valid config");
            assert_eq!(r.per_epoch.len(), 3, "{method} failed");
            assert!(r.per_epoch.iter().all(|e| e.loss.is_finite()));
        }
    }

    #[test]
    fn single_device_degenerates_gracefully() {
        let mut cfg = quick_cfg(Method::Vanilla, 3);
        cfg.devices_per_machine = 1;
        let r = run_experiment(&cfg).expect("valid config");
        assert_eq!(r.per_epoch.len(), 3);
        // No peers => no communication bytes.
        assert_eq!(r.total_bytes, 0);
    }

    #[test]
    fn invalid_configs_error_without_panicking() {
        let mut zero_epochs = quick_cfg(Method::Vanilla, 3);
        zero_epochs.training.epochs = 0;
        assert!(matches!(
            run_experiment(&zero_epochs),
            Err(Error::InvalidConfig(_))
        ));

        let mut no_devices = quick_cfg(Method::Vanilla, 3);
        no_devices.machines = 0;
        assert!(matches!(
            run_experiment(&no_devices),
            Err(Error::InvalidConfig(_))
        ));

        let mut too_many_devices = quick_cfg(Method::Vanilla, 1);
        too_many_devices.dataset.num_nodes = 3;
        too_many_devices.machines = 4;
        assert!(matches!(
            run_experiment(&too_many_devices),
            Err(Error::Partition(_))
        ));
    }

    #[test]
    fn telemetry_opt_in_attaches_log() {
        let mut cfg = quick_cfg(Method::AdaQp, 3);
        cfg.training.telemetry = true;
        let r = run_experiment(&cfg).expect("valid config");
        let log = r.telemetry.as_ref().expect("telemetry requested");
        assert_eq!(log.devices.len(), cfg.num_devices());
        assert!(log.num_events() > 0);
        // Events reconstruct the reported totals.
        let agg = log.aggregate();
        let (total, tb) = agg.cluster_totals(cfg.method, cfg.training.disable_overlap);
        assert!((total - r.total_sim_seconds).abs() <= 1e-9 * r.total_sim_seconds.max(1.0));
        assert!((tb.comm - r.total_breakdown.comm).abs() <= 1e-9);
        assert!((tb.solve - r.total_breakdown.solve).abs() <= 1e-9);
    }
}
