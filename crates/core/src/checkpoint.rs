//! Checkpointing: persist and restore a trained model (and the experiment
//! that produced it) so long runs can resume or be evaluated later.

use crate::config::ExperimentConfig;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// A serializable training checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version for forward compatibility.
    pub version: u32,
    /// The experiment this model came from.
    pub config: ExperimentConfig,
    /// Epochs completed.
    pub epoch: usize,
    /// Flattened model parameters ([`gnn::Gnn::params_flat`] order).
    pub params: Vec<f32>,
    /// Best validation score seen so far.
    pub best_val: f64,
}

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Errors raised by checkpoint I/O.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// JSON (de)serialization failure.
    Serde(serde_json::Error),
    /// Version or shape mismatch on load.
    Incompatible(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Serde(e) => write!(f, "checkpoint serialization error: {e}"),
            CheckpointError::Incompatible(m) => write!(f, "incompatible checkpoint: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<serde_json::Error> for CheckpointError {
    fn from(e: serde_json::Error) -> Self {
        CheckpointError::Serde(e)
    }
}

impl Checkpoint {
    /// Builds a checkpoint from a trained model's flattened parameters.
    pub fn new(config: ExperimentConfig, epoch: usize, params: Vec<f32>, best_val: f64) -> Self {
        Self {
            version: CHECKPOINT_VERSION,
            config,
            epoch,
            params,
            best_val,
        }
    }

    /// Writes the checkpoint as JSON.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] on write failures.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let raw = serde_json::to_vec(self)?;
        std::fs::write(path, raw)?;
        Ok(())
    }

    /// Loads a checkpoint and validates its version.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] on read failures or version mismatch.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let raw = std::fs::read(path)?;
        let cp: Checkpoint = serde_json::from_slice(&raw)?;
        if cp.version != CHECKPOINT_VERSION {
            return Err(CheckpointError::Incompatible(format!(
                "version {} (expected {CHECKPOINT_VERSION})",
                cp.version
            )));
        }
        Ok(cp)
    }

    /// Instantiates the checkpoint's model with its stored parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Incompatible`] if the stored parameter
    /// vector does not match the architecture in `config`.
    pub fn restore_model(&self) -> Result<gnn::Gnn, CheckpointError> {
        let ds = self.config.dataset.generate(self.config.seed);
        let dims = self.config.training.dims(ds.feature_dim(), ds.num_classes);
        let mut rng = tensor::Rng::seed_from(self.config.seed);
        let mut model = gnn::Gnn::with_dropout(
            self.config.training.conv_kind(),
            &dims,
            self.config.training.dropout,
            &mut rng,
        );
        if model.param_count() != self.params.len() {
            return Err(CheckpointError::Incompatible(format!(
                "parameter count {} (architecture expects {})",
                self.params.len(),
                model.param_count()
            )));
        }
        model.set_params_flat(&self.params);
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Method, TrainingConfig};
    use graph::DatasetSpec;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("adaqp-checkpoint-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    fn sample_config() -> ExperimentConfig {
        ExperimentConfig {
            dataset: DatasetSpec::tiny(),
            machines: 1,
            devices_per_machine: 2,
            method: Method::AdaQp,
            training: TrainingConfig {
                epochs: 3,
                hidden: 16,
                num_layers: 2,
                ..TrainingConfig::default()
            },
            seed: 404,
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let cfg = sample_config();
        let ds = cfg.dataset.generate(cfg.seed);
        let dims = cfg.training.dims(ds.feature_dim(), ds.num_classes);
        let mut rng = tensor::Rng::seed_from(cfg.seed);
        let model = gnn::Gnn::with_dropout(cfg.training.conv_kind(), &dims, 0.0, &mut rng);
        let cp = Checkpoint::new(cfg, 3, model.params_flat(), 0.87);
        let path = tmp("roundtrip.json");
        cp.save(&path).expect("save");
        let loaded = Checkpoint::load(&path).expect("load");
        assert_eq!(loaded, cp);
    }

    #[test]
    fn restore_model_reproduces_parameters() {
        let cfg = sample_config();
        let ds = cfg.dataset.generate(cfg.seed);
        let dims = cfg.training.dims(ds.feature_dim(), ds.num_classes);
        let mut rng = tensor::Rng::seed_from(cfg.seed);
        let mut model = gnn::Gnn::with_dropout(cfg.training.conv_kind(), &dims, 0.0, &mut rng);
        // Make parameters distinctive.
        let params: Vec<f32> = (0..model.param_count()).map(|i| i as f32 * 0.01).collect();
        model.set_params_flat(&params);
        let cp = Checkpoint::new(cfg, 1, model.params_flat(), 0.5);
        let restored = cp.restore_model().expect("restore");
        assert_eq!(restored.params_flat(), params);
    }

    #[test]
    fn wrong_param_count_is_rejected() {
        let cp = Checkpoint::new(sample_config(), 0, vec![0.0; 7], 0.0);
        match cp.restore_model() {
            Err(CheckpointError::Incompatible(m)) => assert!(m.contains("parameter count")),
            other => panic!("expected incompatibility, got {other:?}"),
        }
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut cp = Checkpoint::new(sample_config(), 0, vec![], 0.0);
        cp.version = 99;
        let path = tmp("badversion.json");
        cp.save(&path).expect("save");
        match Checkpoint::load(&path) {
            Err(CheckpointError::Incompatible(m)) => assert!(m.contains("version")),
            other => panic!("expected incompatibility, got {other:?}"),
        }
    }
}
