//! Hyper-parameter search for the Adaptive Bit-width Assigner's knobs.
//!
//! Sec. 5.5 of the paper closes with: *"How to automatically decide the best
//! values for these hyper-parameters warrantees further investigation, e.g.,
//! ... searching for the best hyper-parameter combinations."* This module
//! implements that follow-up: a grid search over (group size, lambda,
//! re-assignment period) that scores each combination by validation accuracy
//! with a throughput tie-break.

use crate::config::ExperimentConfig;
use crate::error::Error;
use crate::metrics::RunResult;
use serde::{Deserialize, Serialize};

/// Search space for the assigner's three hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneGrid {
    /// Candidate message group sizes.
    pub group_sizes: Vec<usize>,
    /// Candidate scalarization weights.
    pub lambdas: Vec<f64>,
    /// Candidate re-assignment periods.
    pub periods: Vec<usize>,
}

impl Default for TuneGrid {
    fn default() -> Self {
        Self {
            group_sizes: vec![32, 64, 256],
            lambdas: vec![0.25, 0.5, 0.75],
            periods: vec![10, 25, 50],
        }
    }
}

impl TuneGrid {
    /// Number of combinations the grid enumerates.
    pub fn len(&self) -> usize {
        self.group_sizes.len() * self.lambdas.len() * self.periods.len()
    }

    /// True when the grid is empty along any axis.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over all `(group_size, lambda, period)` combinations.
    pub fn combinations(&self) -> impl Iterator<Item = (usize, f64, usize)> + '_ {
        self.group_sizes.iter().flat_map(move |&g| {
            self.lambdas
                .iter()
                .flat_map(move |&l| self.periods.iter().map(move |&p| (g, l, p)))
        })
    }
}

/// One evaluated grid point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneTrial {
    /// Message group size used.
    pub group_size: usize,
    /// Lambda used.
    pub lambda: f64,
    /// Re-assignment period used.
    pub period: usize,
    /// Best validation score of the run.
    pub val_score: f64,
    /// Simulated throughput.
    pub throughput: f64,
    /// Total simulated wall-clock seconds.
    pub wallclock_s: f64,
}

/// Output of [`grid_search`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneReport {
    /// Every evaluated combination.
    pub trials: Vec<TuneTrial>,
    /// Index of the winning trial in `trials`.
    pub best: usize,
}

impl TuneReport {
    /// The winning trial.
    pub fn best_trial(&self) -> &TuneTrial {
        &self.trials[self.best]
    }
}

/// Scores `a` against `b`: higher validation accuracy wins; ties (within
/// `acc_tolerance`) go to the higher throughput.
fn better(a: &TuneTrial, b: &TuneTrial, acc_tolerance: f64) -> bool {
    if (a.val_score - b.val_score).abs() <= acc_tolerance {
        a.throughput > b.throughput
    } else {
        a.val_score > b.val_score
    }
}

/// Runs the full grid for `base` (method is forced to AdaQP) and returns all
/// trials plus the winner. `acc_tolerance` controls when two accuracies are
/// considered tied (e.g. `0.002` = 0.2 points).
///
/// # Errors
///
/// [`Error::InvalidConfig`] when the grid is empty along any axis or a grid
/// point produces an invalid configuration.
pub fn grid_search(
    base: &ExperimentConfig,
    grid: &TuneGrid,
    acc_tolerance: f64,
) -> Result<TuneReport, Error> {
    if grid.is_empty() {
        return Err(Error::InvalidConfig("empty tuning grid".into()));
    }
    let mut trials: Vec<TuneTrial> = Vec::with_capacity(grid.len());
    let mut best = 0usize;
    for (group_size, lambda, period) in grid.combinations() {
        let mut cfg = base.clone();
        cfg.method = crate::config::Method::AdaQp;
        cfg.training.group_size = group_size;
        cfg.training.lambda = lambda;
        cfg.training.reassign_period = period;
        let result: RunResult = crate::runner::run_experiment(&cfg)?;
        let trial = TuneTrial {
            group_size,
            lambda,
            period,
            val_score: result.best_val,
            throughput: result.throughput,
            wallclock_s: result.total_sim_seconds,
        };
        if trials.is_empty() || better(&trial, &trials[best], acc_tolerance) {
            best = trials.len();
        }
        trials.push(trial);
    }
    Ok(TuneReport { trials, best })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Method, TrainingConfig};
    use graph::DatasetSpec;

    #[test]
    fn grid_enumerates_cartesian_product() {
        let g = TuneGrid {
            group_sizes: vec![8, 16],
            lambdas: vec![0.5],
            periods: vec![5, 10, 20],
        };
        assert_eq!(g.len(), 6);
        let all: Vec<_> = g.combinations().collect();
        assert_eq!(all.len(), 6);
        assert!(all.contains(&(16, 0.5, 20)));
    }

    #[test]
    fn better_prefers_accuracy_then_throughput() {
        let mk = |acc, tp| TuneTrial {
            group_size: 1,
            lambda: 0.5,
            period: 1,
            val_score: acc,
            throughput: tp,
            wallclock_s: 1.0,
        };
        assert!(better(&mk(0.9, 1.0), &mk(0.8, 99.0), 0.002));
        assert!(better(&mk(0.900, 5.0), &mk(0.901, 1.0), 0.002));
        assert!(!better(&mk(0.89, 99.0), &mk(0.91, 1.0), 0.002));
    }

    #[test]
    fn grid_search_runs_and_picks_a_winner() {
        let base = ExperimentConfig {
            dataset: DatasetSpec::tiny(),
            machines: 1,
            devices_per_machine: 2,
            method: Method::AdaQp,
            training: TrainingConfig {
                epochs: 4,
                hidden: 16,
                num_layers: 2,
                dropout: 0.0,
                ..TrainingConfig::default()
            },
            seed: 99,
        };
        let grid = TuneGrid {
            group_sizes: vec![16, 64],
            lambdas: vec![0.5],
            periods: vec![2],
        };
        let report = grid_search(&base, &grid, 0.002).expect("valid grid");
        assert_eq!(report.trials.len(), 2);
        assert!(report.best < 2);
        let b = report.best_trial();
        assert!(b.val_score >= 0.0 && b.throughput > 0.0);
    }

    #[test]
    fn empty_grid_is_an_error() {
        let base = ExperimentConfig {
            dataset: DatasetSpec::tiny(),
            machines: 1,
            devices_per_machine: 1,
            method: Method::AdaQp,
            training: TrainingConfig::default(),
            seed: 0,
        };
        let grid = TuneGrid {
            group_sizes: vec![],
            lambdas: vec![0.5],
            periods: vec![1],
        };
        let err = grid_search(&base, &grid, 0.002);
        assert!(matches!(err, Err(Error::InvalidConfig(msg)) if msg.contains("empty")));
    }
}
