//! Problem and solution types for the bit-width assignment.

use quant::BitWidth;
use serde::{Deserialize, Serialize};

/// One message group (Sec. 4.2: messages between a device pair are sorted by
/// `beta` and chunked into groups; a group shares one bit-width).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupSpec {
    /// Total variance sensitivity of the group: sum of the member messages'
    /// `beta_k` coefficients. Contributes `beta / (2^b - 1)^2` to the
    /// variance objective.
    pub beta: f64,
    /// Bytes this group adds to the pair's transfer per bit of width
    /// (`count * dim / 8`).
    pub bytes_per_bit: f64,
}

impl GroupSpec {
    /// Variance contribution at a given width.
    pub fn variance_at(&self, w: BitWidth) -> f64 {
        let d = w.max_code() as f64;
        self.beta / (d * d)
    }

    /// Byte contribution at a given width.
    pub fn bytes_at(&self, w: BitWidth) -> f64 {
        self.bytes_per_bit * w.bits() as f64
    }
}

/// One device pair's communication in one round: its affine link cost and
/// the message groups it must move.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairSpec {
    /// Link seconds-per-byte.
    pub theta: f64,
    /// Link fixed seconds (fold any per-message wire overhead in here).
    pub gamma: f64,
    /// Message groups to transfer.
    pub groups: Vec<GroupSpec>,
}

impl PairSpec {
    /// Transfer time if group `k` uses `widths[k]`.
    ///
    /// # Panics
    ///
    /// Panics if `widths.len() != groups.len()`.
    pub fn time(&self, widths: &[BitWidth]) -> f64 {
        assert_eq!(widths.len(), self.groups.len(), "one width per group");
        let bytes: f64 = self
            .groups
            .iter()
            .zip(widths)
            .map(|(g, &w)| g.bytes_at(w))
            .sum();
        self.theta * bytes + self.gamma
    }

    /// Variance contribution of this pair under `widths`.
    ///
    /// # Panics
    ///
    /// Panics if `widths.len() != groups.len()`.
    pub fn variance(&self, widths: &[BitWidth]) -> f64 {
        assert_eq!(widths.len(), self.groups.len(), "one width per group");
        self.groups
            .iter()
            .zip(widths)
            .map(|(g, &w)| g.variance_at(w))
            .sum()
    }

    /// Fastest possible time (all groups at 2-bit).
    pub fn min_time(&self) -> f64 {
        let bytes: f64 = self.groups.iter().map(|g| g.bytes_at(BitWidth::B2)).sum();
        self.theta * bytes + self.gamma
    }

    /// Slowest time we would ever choose (all groups at 8-bit).
    pub fn max_time(&self) -> f64 {
        let bytes: f64 = self.groups.iter().map(|g| g.bytes_at(BitWidth::B8)).sum();
        self.theta * bytes + self.gamma
    }

    /// Largest possible variance contribution (all groups at 2-bit).
    pub fn max_variance(&self) -> f64 {
        self.groups
            .iter()
            .map(|g| g.variance_at(BitWidth::B2))
            .sum()
    }
}

/// A full assignment problem: all device pairs active in one communication
/// round plus the scalarization weight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BiObjectiveProblem {
    /// Device pairs.
    pub pairs: Vec<PairSpec>,
    /// Weight on the variance objective; `1 - lambda` weighs the time
    /// objective. The paper uses `lambda = 0.5` by default (Table 8).
    pub lambda: f64,
}

impl BiObjectiveProblem {
    /// Creates a problem, clamping `lambda` into `[0, 1]`.
    pub fn new(pairs: Vec<PairSpec>, lambda: f64) -> Self {
        Self {
            pairs,
            lambda: lambda.clamp(0.0, 1.0),
        }
    }

    /// Evaluates the scalarized objective of an assignment.
    ///
    /// Both objectives are normalized by their worst-case values (variance
    /// at all-2-bit, straggler time at all-8-bit) before the weighted sum,
    /// so `lambda` trades unit-free quantities — otherwise the raw variance
    /// and raw seconds scales would make `lambda` dataset-dependent.
    pub fn objective(&self, widths: &[Vec<BitWidth>]) -> f64 {
        let v_ref = self.variance_ref().max(1e-30);
        let t_ref = self.time_ref().max(1e-30);
        self.lambda * self.total_variance(widths) / v_ref
            + (1.0 - self.lambda) * self.max_time(widths) / t_ref
    }

    /// Worst-case (all-2-bit) total variance, the variance normalizer.
    pub fn variance_ref(&self) -> f64 {
        self.pairs.iter().map(PairSpec::max_variance).sum()
    }

    /// Scalarized objective from precomputed `(variance, max_time)` values
    /// and normalizers — the solver's hot path (avoids recomputing the
    /// normalizers for every candidate).
    pub fn objective_from_parts(
        &self,
        variance: f64,
        max_time: f64,
        v_ref: f64,
        t_ref: f64,
    ) -> f64 {
        self.lambda * variance / v_ref.max(1e-30)
            + (1.0 - self.lambda) * max_time / t_ref.max(1e-30)
    }

    /// Worst-case (all-8-bit) straggler time, the time normalizer.
    pub fn time_ref(&self) -> f64 {
        self.pairs
            .iter()
            .map(PairSpec::max_time)
            .fold(0.0, f64::max)
    }

    /// Total variance across pairs.
    pub fn total_variance(&self, widths: &[Vec<BitWidth>]) -> f64 {
        self.pairs
            .iter()
            .zip(widths)
            .map(|(p, w)| p.variance(w))
            .sum()
    }

    /// Slowest pair's time (the `Z` of Eqn. 12).
    pub fn max_time(&self, widths: &[Vec<BitWidth>]) -> f64 {
        self.pairs
            .iter()
            .zip(widths)
            .map(|(p, w)| p.time(w))
            .fold(0.0, f64::max)
    }

    /// Total number of groups across pairs.
    pub fn num_groups(&self) -> usize {
        self.pairs.iter().map(|p| p.groups.len()).sum()
    }
}

/// Solver output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    /// `widths[pair][group]`.
    pub widths: Vec<Vec<BitWidth>>,
    /// Total variance objective value.
    pub variance: f64,
    /// Slowest pair time.
    pub max_time: f64,
    /// Scalarized objective.
    pub objective: f64,
    /// Candidate assignments the solver evaluated to arrive here
    /// (observability only; does not affect the solution).
    #[serde(default)]
    pub iterations: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> PairSpec {
        PairSpec {
            theta: 1e-6,
            gamma: 1e-4,
            groups: vec![
                GroupSpec {
                    beta: 10.0,
                    bytes_per_bit: 100.0,
                },
                GroupSpec {
                    beta: 1.0,
                    bytes_per_bit: 100.0,
                },
            ],
        }
    }

    #[test]
    fn group_variance_matches_formula() {
        let g = GroupSpec {
            beta: 9.0,
            bytes_per_bit: 1.0,
        };
        assert!((g.variance_at(BitWidth::B2) - 1.0).abs() < 1e-12);
        assert!((g.variance_at(BitWidth::B4) - 9.0 / 225.0).abs() < 1e-12);
    }

    #[test]
    fn pair_time_affine_in_bytes() {
        let p = pair();
        let t2 = p.time(&[BitWidth::B2, BitWidth::B2]);
        let t8 = p.time(&[BitWidth::B8, BitWidth::B8]);
        // 2-bit: 2 groups * 100 B/bit * 2 bits = 400 bytes.
        assert!((t2 - (1e-6 * 400.0 + 1e-4)).abs() < 1e-12);
        assert!((t8 - (1e-6 * 1600.0 + 1e-4)).abs() < 1e-12);
        assert_eq!(p.min_time(), t2);
        assert_eq!(p.max_time(), t8);
    }

    #[test]
    fn objective_combines_lambda_normalized() {
        let prob = BiObjectiveProblem::new(vec![pair()], 0.5);
        let widths = vec![vec![BitWidth::B8, BitWidth::B2]];
        let v = prob.total_variance(&widths) / prob.variance_ref();
        let t = prob.max_time(&widths) / prob.time_ref();
        assert!((prob.objective(&widths) - (0.5 * v + 0.5 * t)).abs() < 1e-12);
        // Normalized terms live in [0, 1].
        assert!(v <= 1.0 + 1e-12 && t <= 1.0 + 1e-12);
    }

    #[test]
    fn lambda_is_clamped() {
        let prob = BiObjectiveProblem::new(vec![], 3.0);
        assert_eq!(prob.lambda, 1.0);
        let prob = BiObjectiveProblem::new(vec![], -1.0);
        assert_eq!(prob.lambda, 0.0);
    }
}
