//! The two-level solver: per-pair knapsack greedy inside a Z sweep.

use crate::problem::{BiObjectiveProblem, PairSpec, Solution};
use quant::BitWidth;

/// Number of candidate `Z` values sampled between the global min and max
/// feasible times (plus every pair's own breakpoints).
const Z_SAMPLES: usize = 48;

/// Minimizes a pair's variance subject to `time <= budget_seconds`.
///
/// Greedy LP-relaxation: start everything at 8-bit and repeatedly apply the
/// downgrade (8→4 or 4→2) with the smallest variance-increase per byte saved
/// until the budget holds. Returns the widths and whether the budget was
/// satisfiable at all (all-2-bit still over budget ⇒ `false`, widths all 2).
pub fn min_variance_within_budget(pair: &PairSpec, budget_seconds: f64) -> (Vec<BitWidth>, bool) {
    let n = pair.groups.len();
    let mut widths = vec![BitWidth::B8; n];
    if pair.time(&widths) <= budget_seconds {
        return (widths, true);
    }
    // Candidate downgrades as (variance_delta / bytes_saved, group, to).
    // Each group contributes two sequential moves: 8->4 then 4->2.
    #[derive(Debug, Clone, Copy)]
    struct Move {
        ratio: f64,
        group: usize,
        to: BitWidth,
    }
    let mut moves: Vec<Move> = Vec::with_capacity(2 * n);
    for (k, g) in pair.groups.iter().enumerate() {
        let d84 = g.variance_at(BitWidth::B4) - g.variance_at(BitWidth::B8);
        let b84 = g.bytes_at(BitWidth::B8) - g.bytes_at(BitWidth::B4);
        let d42 = g.variance_at(BitWidth::B2) - g.variance_at(BitWidth::B4);
        let b42 = g.bytes_at(BitWidth::B4) - g.bytes_at(BitWidth::B2);
        if b84 > 0.0 {
            moves.push(Move {
                ratio: d84 / b84,
                group: k,
                to: BitWidth::B4,
            });
        }
        if b42 > 0.0 {
            moves.push(Move {
                ratio: d42 / b42,
                group: k,
                to: BitWidth::B2,
            });
        }
    }
    // Sort ascending by ratio. Because variance is convex in the byte count
    // (1/(2^b-1)^2 decays faster than bytes grow), a group's 8->4 move always
    // has a smaller ratio than its 4->2 move, so sequencing is respected.
    moves.sort_by(|a, b| {
        a.ratio
            .partial_cmp(&b.ratio)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut current_bytes: f64 = pair.groups.iter().map(|g| g.bytes_at(BitWidth::B8)).sum();
    let budget_bytes = if pair.theta > 0.0 {
        (budget_seconds - pair.gamma) / pair.theta
    } else {
        f64::INFINITY
    };
    for mv in moves {
        if current_bytes <= budget_bytes {
            break;
        }
        // Apply only if it is the legal next step for the group.
        let cur = widths[mv.group];
        let legal = matches!(
            (cur, mv.to),
            (BitWidth::B8, BitWidth::B4) | (BitWidth::B4, BitWidth::B2)
        );
        if !legal {
            continue;
        }
        let g = &pair.groups[mv.group];
        current_bytes -= g.bytes_at(cur) - g.bytes_at(mv.to);
        widths[mv.group] = mv.to;
    }
    let feasible = current_bytes <= budget_bytes + 1e-9;
    if !feasible {
        // Budget unreachable even at all-2-bit; return the floor assignment.
        return (vec![BitWidth::B2; n], false);
    }
    (widths, true)
}

/// Exact multiple-choice-knapsack solution of the per-pair sub-problem by
/// dynamic programming over a discretized byte budget.
///
/// The byte axis is split into `resolution` buckets; each group picks one of
/// the three widths; `dp[j]` holds the minimum variance achievable with at
/// most `j` buckets of bytes. Group byte costs are rounded *up* to buckets,
/// so the returned assignment never exceeds the true budget (the result is
/// exact once `resolution` out-resolves the group byte sizes, and always
/// feasible).
///
/// Returns the widths and whether the budget was satisfiable (all-2-bit
/// still over budget ⇒ `false`, widths all 2-bit).
///
/// # Panics
///
/// Panics if `resolution == 0`.
pub fn min_variance_within_budget_dp(
    pair: &PairSpec,
    budget_seconds: f64,
    resolution: usize,
) -> (Vec<BitWidth>, bool) {
    assert!(resolution > 0, "resolution must be positive");
    let n = pair.groups.len();
    if n == 0 {
        return (Vec::new(), pair.gamma <= budget_seconds + 1e-15);
    }
    let all8 = vec![BitWidth::B8; n];
    if pair.time(&all8) <= budget_seconds {
        return (all8, true);
    }
    let all2 = vec![BitWidth::B2; n];
    if pair.time(&all2) > budget_seconds + 1e-12 {
        return (all2, false);
    }
    let budget_bytes = if pair.theta > 0.0 {
        (budget_seconds - pair.gamma) / pair.theta
    } else {
        f64::INFINITY
    };
    if !budget_bytes.is_finite() {
        return (vec![BitWidth::B8; n], true);
    }
    let bucket = budget_bytes / resolution as f64;
    let cost_of = |g: &crate::problem::GroupSpec, w: BitWidth| -> usize {
        // Floor rounding keeps exact-fit solutions reachable; any
        // discretization overshoot is repaired after reconstruction.
        (g.bytes_at(w) / bucket).floor() as usize
    };
    const INF: f64 = f64::INFINITY;
    // dp over "bytes used" with a per-group choice table for reconstruction.
    let mut dp = vec![INF; resolution + 1];
    let mut choices: Vec<Vec<u8>> = Vec::with_capacity(n);
    dp[0] = 0.0;
    for g in &pair.groups {
        let mut next = vec![INF; resolution + 1];
        let mut pick = vec![u8::MAX; resolution + 1];
        for (wi, &w) in BitWidth::ALL.iter().enumerate() {
            let c = cost_of(g, w);
            let v = g.variance_at(w);
            if c > resolution {
                continue;
            }
            for j in c..=resolution {
                if dp[j - c].is_finite() {
                    let cand = dp[j - c] + v;
                    if cand < next[j] {
                        next[j] = cand;
                        pick[j] = wi as u8;
                    }
                }
            }
        }
        dp = next;
        choices.push(pick);
    }
    // Best end state.
    let mut best_j = usize::MAX;
    let mut best_v = INF;
    for (j, &v) in dp.iter().enumerate() {
        if v < best_v {
            best_v = v;
            best_j = j;
        }
    }
    if best_j == usize::MAX {
        // No feasible packing at this resolution; fall back to the floor.
        return (vec![BitWidth::B2; n], true);
    }
    // Reconstruct.
    let mut widths = vec![BitWidth::B2; n];
    let mut j = best_j;
    for (gi, g) in pair.groups.iter().enumerate().rev() {
        let wi = choices[gi][j];
        debug_assert_ne!(wi, u8::MAX, "reconstruction hole");
        let w = BitWidth::ALL[wi as usize];
        widths[gi] = w;
        j -= cost_of(g, w);
    }
    // Repair the (at most bucket-sized per group) discretization overshoot:
    // downgrade the cheapest variance-per-byte groups until within budget.
    while pair.time(&widths) > budget_seconds + 1e-12 {
        let mut best_gi = usize::MAX;
        let mut best_ratio = f64::INFINITY;
        for (gi, g) in pair.groups.iter().enumerate() {
            let down = match widths[gi] {
                BitWidth::B8 => Some(BitWidth::B4),
                BitWidth::B4 => Some(BitWidth::B2),
                BitWidth::B2 => None,
            };
            let Some(to) = down else { continue };
            let dv = g.variance_at(to) - g.variance_at(widths[gi]);
            let db = g.bytes_at(widths[gi]) - g.bytes_at(to);
            if db > 0.0 && dv / db < best_ratio {
                best_ratio = dv / db;
                best_gi = gi;
            }
        }
        if best_gi == usize::MAX {
            break; // already at the all-2-bit floor
        }
        widths[best_gi] = match widths[best_gi] {
            BitWidth::B8 => BitWidth::B4,
            _ => BitWidth::B2,
        };
    }
    (widths, true)
}

/// Precomputed downgrade schedule for one pair: the greedy's sorted move
/// list turned into prefix sums, so any byte budget resolves with a binary
/// search instead of a fresh sort.
struct PairSchedule {
    /// Bytes at all-8-bit.
    bytes8: f64,
    /// Variance at all-8-bit.
    var8: f64,
    /// After applying the first `k` moves: cumulative bytes saved.
    saved: Vec<f64>,
    /// After applying the first `k` moves: cumulative variance added.
    dvar: Vec<f64>,
    /// Move k's `(group, to)`.
    moves: Vec<(usize, BitWidth)>,
}

impl PairSchedule {
    fn build(pair: &PairSpec) -> Self {
        struct Move {
            ratio: f64,
            group: usize,
            to: BitWidth,
            dv: f64,
            db: f64,
        }
        let mut moves: Vec<Move> = Vec::with_capacity(2 * pair.groups.len());
        for (k, g) in pair.groups.iter().enumerate() {
            for (from, to) in [(BitWidth::B8, BitWidth::B4), (BitWidth::B4, BitWidth::B2)] {
                let dv = g.variance_at(to) - g.variance_at(from);
                let db = g.bytes_at(from) - g.bytes_at(to);
                if db > 0.0 {
                    moves.push(Move {
                        ratio: dv / db,
                        group: k,
                        to,
                        dv,
                        db,
                    });
                }
            }
        }
        // Convexity of 1/(2^b-1)^2 vs bytes guarantees a group's 8->4 move
        // sorts before its 4->2 move, so prefix application stays legal.
        moves.sort_by(|a, b| {
            a.ratio
                .partial_cmp(&b.ratio)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut saved = Vec::with_capacity(moves.len());
        let mut dvar = Vec::with_capacity(moves.len());
        let mut s = 0.0;
        let mut v = 0.0;
        for m in &moves {
            s += m.db;
            v += m.dv;
            saved.push(s);
            dvar.push(v);
        }
        Self {
            bytes8: pair.groups.iter().map(|g| g.bytes_at(BitWidth::B8)).sum(),
            var8: pair
                .groups
                .iter()
                .map(|g| g.variance_at(BitWidth::B8))
                .sum(),
            saved,
            dvar,
            moves: moves.into_iter().map(|m| (m.group, m.to)).collect(),
        }
    }

    /// Number of prefix moves needed to fit `budget_seconds`; `None` when
    /// even all moves (all-2-bit) do not fit.
    fn moves_for_budget(&self, pair: &PairSpec, budget_seconds: f64) -> Option<usize> {
        let budget_bytes = if pair.theta > 0.0 {
            (budget_seconds - pair.gamma) / pair.theta
        } else {
            f64::INFINITY
        };
        let need = self.bytes8 - budget_bytes;
        if need <= 0.0 {
            return Some(0);
        }
        // First k with saved[k-1] >= need.
        let k = self.saved.partition_point(|&s| s < need - 1e-12);
        if k >= self.saved.len() && self.saved.last().is_none_or(|&s| s < need - 1e-9) {
            None
        } else {
            Some((k + 1).min(self.moves.len()))
        }
    }

    /// `(variance, time)` after the first `k` moves.
    fn stats_after(&self, pair: &PairSpec, k: usize) -> (f64, f64) {
        let (saved, dvar) = if k == 0 {
            (0.0, 0.0)
        } else {
            (self.saved[k - 1], self.dvar[k - 1])
        };
        (
            self.var8 + dvar,
            pair.theta * (self.bytes8 - saved) + pair.gamma,
        )
    }

    /// Materializes the width assignment for the first `k` moves.
    fn widths_after(&self, num_groups: usize, k: usize) -> Vec<BitWidth> {
        let mut widths = vec![BitWidth::B8; num_groups];
        for &(g, to) in &self.moves[..k] {
            widths[g] = to;
        }
        widths
    }
}

/// Solves the scalarized bi-objective problem (Eqn. 12).
///
/// Sweeps candidate `Z` values (pair time breakpoints plus a uniform grid),
/// solves the per-pair budgeted sub-problems for each, and returns the best
/// scalarized objective found. With `lambda == 1` the time term vanishes and
/// everything gets 8-bit; with `lambda == 0` only the slowest pair matters
/// and the result is the fastest feasible assignment.
pub fn solve(problem: &BiObjectiveProblem) -> Solution {
    let n_pairs = problem.pairs.len();
    if n_pairs == 0 {
        return Solution {
            widths: Vec::new(),
            variance: 0.0,
            max_time: 0.0,
            objective: 0.0,
            iterations: 0,
        };
    }
    if problem.lambda >= 1.0 {
        // Pure variance objective: maximize precision everywhere.
        let widths: Vec<Vec<BitWidth>> = problem
            .pairs
            .iter()
            .map(|p| vec![BitWidth::B8; p.groups.len()])
            .collect();
        let mut sol = finish(problem, widths);
        sol.iterations = 1;
        return sol;
    }

    // Candidate Z values: every pair's min/max plus a grid between the
    // global extremes.
    let z_floor = problem
        .pairs
        .iter()
        .map(PairSpec::min_time)
        .fold(0.0, f64::max);
    let z_ceil = problem
        .pairs
        .iter()
        .map(PairSpec::max_time)
        .fold(0.0, f64::max)
        .max(z_floor);
    let mut candidates: Vec<f64> = Vec::with_capacity(Z_SAMPLES + 2 * n_pairs.min(32) + 2);
    candidates.push(z_floor);
    candidates.push(z_ceil);
    // Per-pair breakpoints sharpen the sweep, but on large clusters they
    // multiply into the dominant solver cost (pairs grow quadratically with
    // devices); past 32 pairs the uniform grid is accurate enough.
    if n_pairs <= 32 {
        for p in &problem.pairs {
            candidates.push(p.min_time().max(z_floor));
            candidates.push(p.max_time().min(z_ceil).max(z_floor));
        }
    }
    if z_ceil > z_floor {
        for i in 0..Z_SAMPLES {
            candidates.push(z_floor + (z_ceil - z_floor) * (i as f64 + 0.5) / Z_SAMPLES as f64);
        }
    }
    candidates.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    candidates.dedup();

    // Seed with the three uniform assignments so the sweep can never lose
    // to a trivial candidate.
    let v_ref = problem.variance_ref();
    let t_ref = problem.time_ref();
    // Candidate-assignment evaluation count, reported on the solution.
    let mut iterations = 0usize;
    let mut best: Option<Solution> = None;
    for w in BitWidth::ALL {
        let widths: Vec<Vec<BitWidth>> = problem
            .pairs
            .iter()
            .map(|p| vec![w; p.groups.len()])
            .collect();
        let sol = finish_with_refs(problem, widths, v_ref, t_ref);
        iterations += 1;
        if best.as_ref().is_none_or(|b| sol.objective < b.objective) {
            best = Some(sol);
        }
    }
    // Precompute per-pair downgrade schedules once; every candidate Z is
    // then a binary search per pair and the winning candidate alone pays
    // materialization.
    let schedules: Vec<PairSchedule> = problem.pairs.iter().map(PairSchedule::build).collect();
    let mut best_candidate: Option<(f64, f64, f64)> = None; // (objective, variance, z)
    for &z in &candidates {
        let mut variance = 0.0;
        let mut max_time: f64 = 0.0;
        for (p, sched) in problem.pairs.iter().zip(&schedules) {
            let k = sched.moves_for_budget(p, z).unwrap_or(sched.moves.len());
            let (v, t) = sched.stats_after(p, k);
            variance += v;
            max_time = max_time.max(t);
        }
        let obj = problem.objective_from_parts(variance, max_time, v_ref, t_ref);
        iterations += 1;
        if best_candidate.is_none_or(|(o, _, _)| obj < o) {
            best_candidate = Some((obj, variance, z));
        }
    }
    if let Some((obj, _, z)) = best_candidate {
        let current_best = best.as_ref().map_or(f64::INFINITY, |b| b.objective);
        if obj < current_best {
            let widths: Vec<Vec<BitWidth>> = problem
                .pairs
                .iter()
                .zip(&schedules)
                .map(|(p, sched)| {
                    let k = sched.moves_for_budget(p, z).unwrap_or(sched.moves.len());
                    sched.widths_after(p.groups.len(), k)
                })
                .collect();
            best = Some(finish_with_refs(problem, widths, v_ref, t_ref));
        }
    }
    // lint:allow(no-panic): the Z-candidate list is non-empty by construction, so a solution always exists
    let mut sol = best.expect("at least one candidate evaluated");
    sol.iterations = iterations;
    sol
}

/// Like [`solve`] but with the exact DP inner solver
/// ([`min_variance_within_budget_dp`]) instead of the LP-relaxation greedy.
/// Slower (each pair pays `O(groups * resolution)` per Z candidate) but
/// never worse than the greedy at the evaluated candidates; use it when
/// group sizes are very uneven.
pub fn solve_exact(problem: &BiObjectiveProblem, resolution: usize) -> Solution {
    let n_pairs = problem.pairs.len();
    if n_pairs == 0 || problem.lambda >= 1.0 {
        return solve(problem);
    }
    let z_floor = problem
        .pairs
        .iter()
        .map(PairSpec::min_time)
        .fold(0.0, f64::max);
    let z_ceil = problem
        .pairs
        .iter()
        .map(PairSpec::max_time)
        .fold(0.0, f64::max)
        .max(z_floor);
    let mut candidates: Vec<f64> = vec![z_floor, z_ceil];
    if z_ceil > z_floor {
        for i in 0..Z_SAMPLES {
            candidates.push(z_floor + (z_ceil - z_floor) * (i as f64 + 0.5) / Z_SAMPLES as f64);
        }
    }
    let mut best = solve(problem); // greedy baseline: exact never returns worse
    let mut iterations = best.iterations;
    for &z in &candidates {
        let mut widths = Vec::with_capacity(n_pairs);
        for p in &problem.pairs {
            let (w, _feasible) = min_variance_within_budget_dp(p, z, resolution);
            widths.push(w);
        }
        let sol = finish(problem, widths);
        iterations += 1;
        if sol.objective < best.objective {
            best = sol;
        }
    }
    best.iterations = iterations;
    best
}

fn finish(problem: &BiObjectiveProblem, widths: Vec<Vec<BitWidth>>) -> Solution {
    let v_ref = problem.variance_ref();
    let t_ref = problem.time_ref();
    finish_with_refs(problem, widths, v_ref, t_ref)
}

/// [`finish`] with the objective normalizers precomputed (hot path).
fn finish_with_refs(
    problem: &BiObjectiveProblem,
    widths: Vec<Vec<BitWidth>>,
    v_ref: f64,
    t_ref: f64,
) -> Solution {
    let variance = problem.total_variance(&widths);
    let max_time = problem.max_time(&widths);
    let objective = problem.objective_from_parts(variance, max_time, v_ref, t_ref);
    Solution {
        widths,
        variance,
        max_time,
        objective,
        iterations: 0,
    }
}

/// Exhaustive solver for small instances (`3^num_groups` assignments).
///
/// # Panics
///
/// Panics if the instance has more than 16 groups total.
pub fn brute_force(problem: &BiObjectiveProblem) -> Solution {
    let total_groups = problem.num_groups();
    assert!(total_groups <= 16, "brute force limited to 16 groups");
    let shape: Vec<usize> = problem.pairs.iter().map(|p| p.groups.len()).collect();
    let mut best: Option<Solution> = None;
    let mut iterations = 0usize;
    let mut counter = vec![0usize; total_groups];
    loop {
        // Materialize the assignment.
        let mut widths: Vec<Vec<BitWidth>> = Vec::with_capacity(shape.len());
        let mut idx = 0;
        for &len in &shape {
            widths.push(
                (0..len)
                    .map(|_| {
                        let w = BitWidth::ALL[counter[idx]];
                        idx += 1;
                        w
                    })
                    .collect(),
            );
        }
        let sol = finish(problem, widths);
        iterations += 1;
        if best.as_ref().is_none_or(|b| sol.objective < b.objective) {
            best = Some(sol);
        }
        // Increment the mixed-radix counter.
        let mut pos = 0;
        loop {
            if pos == total_groups {
                // lint:allow(no-panic): the exhaustive counter evaluates every assignment before overflowing
                let mut sol = best.expect("at least one assignment");
                sol.iterations = iterations;
                return sol;
            }
            counter[pos] += 1;
            if counter[pos] < 3 {
                break;
            }
            counter[pos] = 0;
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::GroupSpec;

    fn simple_pair(betas: &[f64], bytes_per_bit: f64, theta: f64, gamma: f64) -> PairSpec {
        PairSpec {
            theta,
            gamma,
            groups: betas
                .iter()
                .map(|&beta| GroupSpec {
                    beta,
                    bytes_per_bit,
                })
                .collect(),
        }
    }

    #[test]
    fn lambda_one_gives_full_precision() {
        let prob = BiObjectiveProblem::new(vec![simple_pair(&[1.0, 5.0], 100.0, 1e-6, 0.0)], 1.0);
        let sol = solve(&prob);
        assert!(sol.widths[0].iter().all(|&w| w == BitWidth::B8));
    }

    #[test]
    fn lambda_zero_minimizes_bottleneck_time() {
        // Two pairs; pair 1 carries 10x the data. With lambda=0 the slowest
        // pair must be driven to 2-bit.
        let prob = BiObjectiveProblem::new(
            vec![
                simple_pair(&[1.0], 10.0, 1e-6, 0.0),
                simple_pair(&[1.0], 100.0, 1e-6, 0.0),
            ],
            0.0,
        );
        let sol = solve(&prob);
        assert_eq!(sol.widths[1], vec![BitWidth::B2]);
        // The light pair may keep higher precision without moving the max.
        assert!(sol.widths[0][0] >= BitWidth::B2);
        assert!((sol.max_time - 200e-6 * 1.0).abs() < 1e-9);
    }

    #[test]
    fn high_beta_groups_get_more_bits() {
        // One pair, two groups with very different beta, budget-pressured by
        // a moderate lambda: the high-beta group should keep >= the bits of
        // the low-beta group.
        let prob =
            BiObjectiveProblem::new(vec![simple_pair(&[1000.0, 0.001], 1000.0, 1e-5, 0.0)], 0.5);
        let sol = solve(&prob);
        assert!(
            sol.widths[0][0] >= sol.widths[0][1],
            "high-beta group {:?} must not get fewer bits than low-beta {:?}",
            sol.widths[0][0],
            sol.widths[0][1]
        );
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        // Several deterministic small instances with heterogeneous links.
        let cases = [
            BiObjectiveProblem::new(
                vec![
                    simple_pair(&[3.0, 0.5, 7.0], 50.0, 2e-6, 1e-4),
                    simple_pair(&[1.0], 400.0, 1e-6, 5e-5),
                ],
                0.5,
            ),
            BiObjectiveProblem::new(
                vec![
                    simple_pair(&[10.0, 10.0], 100.0, 1e-6, 0.0),
                    simple_pair(&[0.1, 0.2], 100.0, 4e-6, 0.0),
                ],
                0.3,
            ),
            BiObjectiveProblem::new(
                vec![simple_pair(&[5.0, 1.0, 0.2, 8.0], 25.0, 1e-5, 1e-3)],
                0.8,
            ),
        ];
        for (i, prob) in cases.iter().enumerate() {
            let heur = solve(prob);
            let exact = brute_force(prob);
            // Heuristic within 5% of the exact optimum (usually equal).
            assert!(
                heur.objective <= exact.objective * 1.05 + 1e-12,
                "case {i}: heuristic {} vs exact {}",
                heur.objective,
                exact.objective
            );
        }
    }

    #[test]
    fn empty_problem() {
        let sol = solve(&BiObjectiveProblem::new(vec![], 0.5));
        assert!(sol.widths.is_empty());
        assert_eq!(sol.objective, 0.0);
        assert_eq!(sol.iterations, 0);
    }

    #[test]
    fn iterations_count_candidate_evaluations() {
        let prob = BiObjectiveProblem::new(vec![simple_pair(&[1.0, 5.0], 100.0, 1e-6, 0.0)], 0.5);
        // 3 uniform seeds plus at least the floor/ceil candidates.
        let sol = solve(&prob);
        assert!(sol.iterations >= 5, "got {}", sol.iterations);
        // The exact solver adds its own DP sweep on top of the greedy's.
        let exact = solve_exact(&prob, 256);
        assert!(exact.iterations > sol.iterations);
        // Brute force evaluates the full 3^groups grid.
        let bf = brute_force(&prob);
        assert_eq!(bf.iterations, 9);
        // Pure-variance short-circuit evaluates exactly one assignment.
        let pure = solve(&BiObjectiveProblem::new(
            vec![simple_pair(&[1.0], 10.0, 1e-6, 0.0)],
            1.0,
        ));
        assert_eq!(pure.iterations, 1);
    }

    #[test]
    fn pair_with_no_groups() {
        let prob = BiObjectiveProblem::new(
            vec![
                PairSpec {
                    theta: 1e-6,
                    gamma: 2e-4,
                    groups: vec![],
                },
                simple_pair(&[1.0], 10.0, 1e-6, 0.0),
            ],
            0.5,
        );
        let sol = solve(&prob);
        assert!(sol.widths[0].is_empty());
        assert!(sol.max_time >= 2e-4);
    }

    #[test]
    fn budget_greedy_downgrades_low_beta_first() {
        let pair = simple_pair(&[100.0, 1.0, 50.0], 100.0, 1e-6, 0.0);
        // All-8 time = 3 * 100 * 8 * 1e-6 = 2.4ms; force ~half.
        let (widths, feasible) = min_variance_within_budget(&pair, 1.4e-3);
        assert!(feasible);
        // Low-beta group 1 must be downgraded at least as far as the others.
        assert!(widths[1] <= widths[0]);
        assert!(widths[1] <= widths[2]);
        assert!(pair.time(&widths) <= 1.4e-3 + 1e-12);
    }

    #[test]
    fn dp_matches_or_beats_greedy() {
        let pair = simple_pair(&[100.0, 1.0, 50.0, 7.0, 0.3], 100.0, 1e-6, 0.0);
        for budget in [1.2e-3, 1.8e-3, 2.5e-3, 3.5e-3] {
            let (gw, gfeas) = min_variance_within_budget(&pair, budget);
            let (dw, dfeas) = min_variance_within_budget_dp(&pair, budget, 2048);
            assert_eq!(gfeas, dfeas, "feasibility at {budget}");
            if gfeas {
                assert!(pair.time(&dw) <= budget + 1e-12, "dp over budget");
                // DP is exact up to discretization + repair; allow a small
                // slack over the greedy (which solves the continuous budget).
                assert!(
                    pair.variance(&dw) <= pair.variance(&gw) * 1.05 + 1e-12,
                    "dp variance {} worse than greedy {} at {budget}",
                    pair.variance(&dw),
                    pair.variance(&gw)
                );
            }
        }
    }

    #[test]
    fn dp_handles_degenerate_budgets() {
        let pair = simple_pair(&[1.0], 100.0, 1e-3, 0.0);
        // Below all-2-bit.
        let (w, feasible) = min_variance_within_budget_dp(&pair, 1e-9, 256);
        assert!(!feasible);
        assert_eq!(w, vec![BitWidth::B2]);
        // Above all-8-bit.
        let (w, feasible) = min_variance_within_budget_dp(&pair, 10.0, 256);
        assert!(feasible);
        assert_eq!(w, vec![BitWidth::B8]);
        // Empty pair.
        let empty = PairSpec {
            theta: 1e-6,
            gamma: 1e-4,
            groups: vec![],
        };
        let (w, feasible) = min_variance_within_budget_dp(&empty, 1.0, 256);
        assert!(w.is_empty() && feasible);
    }

    #[test]
    fn solve_exact_never_worse_than_greedy() {
        let prob = BiObjectiveProblem::new(
            vec![
                simple_pair(&[3.0, 0.5, 7.0, 11.0], 50.0, 2e-6, 1e-4),
                simple_pair(&[1.0, 90.0], 400.0, 1e-6, 5e-5),
            ],
            0.5,
        );
        let greedy = solve(&prob);
        let exact = solve_exact(&prob, 1024);
        assert!(exact.objective <= greedy.objective + 1e-12);
        // And still at least as good as brute force allows.
        let bf = brute_force(&prob);
        assert!(exact.objective <= bf.objective * 1.02 + 1e-12);
    }

    #[test]
    fn infeasible_budget_returns_floor() {
        let pair = simple_pair(&[1.0], 100.0, 1e-3, 0.0);
        let (widths, feasible) = min_variance_within_budget(&pair, 1e-9);
        assert!(!feasible);
        assert_eq!(widths, vec![BitWidth::B2]);
    }

    #[test]
    fn variance_decreases_as_lambda_grows() {
        let mk = |lambda| {
            BiObjectiveProblem::new(
                vec![
                    simple_pair(&[10.0, 2.0, 30.0], 200.0, 5e-6, 1e-4),
                    simple_pair(&[8.0, 1.0], 500.0, 2e-6, 1e-4),
                ],
                lambda,
            )
        };
        let v_low = solve(&mk(0.1)).variance;
        let v_high = solve(&mk(0.9)).variance;
        assert!(
            v_high <= v_low + 1e-12,
            "variance should not grow with lambda: {v_low} -> {v_high}"
        );
        let t_low = solve(&mk(0.1)).max_time;
        let t_high = solve(&mk(0.9)).max_time;
        assert!(
            t_high >= t_low - 1e-12,
            "time should not shrink with lambda: {t_low} -> {t_high}"
        );
    }
}
