//! Bi-objective bit-width assignment (Sec. 4.2 of the AdaQP paper).
//!
//! The paper formulates bit-width selection as the scalarized problem
//! (Eqn. 12):
//!
//! ```text
//! min_{b_k in {2,4,8}}  lambda * sum_i sum_k beta_k / (2^{b_k} - 1)^2  +  (1 - lambda) * Z
//! s.t.                  theta_i * sum_k D_k b_k + gamma_i <= Z   for every device pair i
//! ```
//!
//! and hands it to Gurobi as a MILP. Gurobi is not available here, so this
//! crate solves the same problem with an exact-in-practice two-level method:
//!
//! * **Inner problem** (fixed `Z`): each pair decouples into a
//!   multiple-choice knapsack — minimize variance subject to a byte budget.
//!   We solve it with the classic LP-relaxation greedy (downgrade the group
//!   with the cheapest variance-per-byte cost until the budget holds), which
//!   is optimal up to at most one group per pair and exact when group sizes
//!   are uniform.
//! * **Outer problem**: sweep candidate `Z` values over the feasible range
//!   (every pair's all-2-bit and all-8-bit times are breakpoints) and keep
//!   the best scalarized objective.
//!
//! A brute-force solver is provided for small instances and used by the
//! tests to certify the heuristic's optimality gap.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod problem;
mod solve;

pub use problem::{BiObjectiveProblem, GroupSpec, PairSpec, Solution};
pub use solve::{
    brute_force, min_variance_within_budget, min_variance_within_budget_dp, solve, solve_exact,
};
