//! Property tests: the heuristic solver against brute force, and structural
//! invariants of the assignment.

use proptest::prelude::*;
use solver::{brute_force, solve, BiObjectiveProblem, GroupSpec, PairSpec};

fn arb_group() -> impl Strategy<Value = GroupSpec> {
    (0.01f64..100.0, 1.0f64..500.0).prop_map(|(beta, bytes_per_bit)| GroupSpec {
        beta,
        bytes_per_bit,
    })
}

fn arb_pair(max_groups: usize) -> impl Strategy<Value = PairSpec> {
    (
        1e-7f64..1e-4,
        0.0f64..1e-3,
        proptest::collection::vec(arb_group(), 1..=max_groups),
    )
        .prop_map(|(theta, gamma, groups)| PairSpec {
            theta,
            gamma,
            groups,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn heuristic_close_to_brute_force(
        pairs in proptest::collection::vec(arb_pair(3), 1..=3),
        lambda in 0.0f64..=1.0,
    ) {
        let total: usize = pairs.iter().map(|p| p.groups.len()).sum();
        prop_assume!(total <= 8);
        let prob = BiObjectiveProblem::new(pairs, lambda);
        let heur = solve(&prob);
        let exact = brute_force(&prob);
        prop_assert!(
            heur.objective <= exact.objective * 1.10 + 1e-12,
            "heuristic {} vs exact {}",
            heur.objective,
            exact.objective
        );
    }

    #[test]
    fn solution_shape_matches_problem(
        pairs in proptest::collection::vec(arb_pair(6), 1..=5),
        lambda in 0.0f64..=1.0,
    ) {
        let prob = BiObjectiveProblem::new(pairs.clone(), lambda);
        let sol = solve(&prob);
        prop_assert_eq!(sol.widths.len(), pairs.len());
        for (w, p) in sol.widths.iter().zip(&pairs) {
            prop_assert_eq!(w.len(), p.groups.len());
        }
        // Reported metrics are consistent with the returned widths.
        prop_assert!((sol.variance - prob.total_variance(&sol.widths)).abs() < 1e-9);
        prop_assert!((sol.max_time - prob.max_time(&sol.widths)).abs() < 1e-9);
    }

    #[test]
    fn objective_no_worse_than_uniform_extremes(
        pairs in proptest::collection::vec(arb_pair(5), 1..=4),
        lambda in 0.0f64..=1.0,
    ) {
        let prob = BiObjectiveProblem::new(pairs.clone(), lambda);
        let sol = solve(&prob);
        for w in quant::BitWidth::ALL {
            let uniform: Vec<Vec<quant::BitWidth>> = pairs
                .iter()
                .map(|p| vec![w; p.groups.len()])
                .collect();
            let uniform_obj = prob.objective(&uniform);
            prop_assert!(
                sol.objective <= uniform_obj + 1e-12,
                "solver {} beaten by uniform {w}: {uniform_obj}",
                sol.objective
            );
        }
    }
}
