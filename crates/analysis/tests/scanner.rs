//! Lexer and rule-engine tests, driven by the fixtures under
//! `tests/fixtures/` (which the workspace walker deliberately skips).

use analysis::lexer::{lex, TokKind};
use analysis::{find_root, scan_path, scan_workspace, Finding};
use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn scan_fixture(name: &str) -> Vec<Finding> {
    scan_path(&fixture(name)).expect("fixture readable")
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- lexer

#[test]
fn line_and_nested_block_comments_are_single_tokens() {
    let toks = lex("a // unwrap() here\nb /* outer /* inner */ still */ c");
    let idents: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(idents, ["a", "b", "c"]);
    let comments: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Comment)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(
        comments,
        ["// unwrap() here", "/* outer /* inner */ still */"]
    );
}

#[test]
fn string_escapes_do_not_terminate_the_literal() {
    let toks = lex(r#"let s = "quote \" unwrap() inside"; done"#);
    assert!(toks
        .iter()
        .any(|t| t.kind == TokKind::Str && t.text.contains("unwrap")));
    // The unwrap inside the string must not surface as an identifier.
    assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
    assert!(toks.iter().any(|t| t.is_ident("done")));
}

#[test]
fn raw_strings_respect_hash_depth() {
    let toks = lex(r###"let s = r##"has "# inside HashMap"##; after"###);
    let strs: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Str)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(strs.len(), 1);
    assert!(strs[0].contains("HashMap"));
    assert!(!toks.iter().any(|t| t.is_ident("HashMap")));
    assert!(toks.iter().any(|t| t.is_ident("after")));
}

#[test]
fn lifetimes_are_distinguished_from_char_literals() {
    let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
    let lifetimes: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(lifetimes, ["'a", "'a"]);
    let chars: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokKind::CharLit)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(chars, ["'x'"]);
}

#[test]
fn escaped_char_literals_lex_as_one_token() {
    let toks = lex(r"let c = '\''; let n = '\n'; rest");
    let chars: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokKind::CharLit)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(chars, [r"'\''", r"'\n'"]);
    assert!(toks.iter().any(|t| t.is_ident("rest")));
}

#[test]
fn token_lines_are_tracked_across_multiline_literals() {
    let toks = lex("one\n\"a\nb\"\nthree");
    let three = toks.iter().find(|t| t.is_ident("three")).expect("lexed");
    assert_eq!(three.line, 4);
}

// --------------------------------------------------- skeleton extraction
// Edge cases where sloppy tokenization would corrupt brace matching or
// invent phantom yields: raw strings, nested block comments, and char/byte
// literals that contain braces or Command-construction text.

fn skeletons_of(src: &str) -> Vec<analysis::Skeleton> {
    let toks = lex(src);
    let code: Vec<&analysis::lexer::Tok> =
        toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
    analysis::extract_skeletons(&code)
}

#[test]
fn raw_strings_with_braces_do_not_corrupt_the_skeleton() {
    let src = r####"
impl DeviceProgram for RawStr {
    type Output = ();
    fn resume(&mut self, ctx: &mut DeviceCtx, input: Resume) -> Step<()> {
        let banner = r#"{ Command::Send { dst: 0, tag: 1 } } }"#;
        drop((banner, ctx, input));
        Step::Yield(Command::Barrier)
    }
}
"####;
    let skels = skeletons_of(src);
    assert_eq!(skels.len(), 1);
    assert_eq!(skels[0].impl_name, "RawStr");
    // Only the real Barrier yield survives; the Send text inside the raw
    // string (with its unbalanced braces) is inert.
    assert_eq!(
        skels[0].nodes,
        [analysis::protocol::Node::Yield(
            analysis::protocol::CommOp::Collective {
                kind: "Barrier".into(),
                line: 7,
            }
        )]
    );
}

#[test]
fn nested_block_comments_with_braces_are_invisible_to_the_skeleton() {
    let src = "
impl DeviceProgram for Commented {
    type Output = ();
    fn resume(&mut self, ctx: &mut DeviceCtx, input: Resume) -> Step<()> {
        /* outer { /* inner Command::Recv { src: 9, tag: 9 } } */ still } */
        drop((ctx, input));
        Step::Yield(Command::Barrier)
    }
}
";
    let skels = skeletons_of(src);
    assert_eq!(skels.len(), 1);
    assert_eq!(skels[0].nodes.len(), 1, "only the real yield: {skels:?}");
    assert!(matches!(
        skels[0].nodes[0],
        analysis::protocol::Node::Yield(analysis::protocol::CommOp::Collective { ref kind, .. })
            if kind == "Barrier"
    ));
}

#[test]
fn char_and_byte_literals_with_braces_do_not_shift_scopes() {
    let src = "
impl DeviceProgram for CharBraces {
    type Output = ();
    fn resume(&mut self, ctx: &mut DeviceCtx, input: Resume) -> Step<()> {
        let open = '{';
        let close = b'}';
        drop((open, close, ctx, input));
        Step::Yield(Command::RingAll2All { payload: Bytes::new() })
    }
}
fn after() {}
";
    let skels = skeletons_of(src);
    assert_eq!(skels.len(), 1, "impl body ends where it should: {skels:?}");
    assert_eq!(skels[0].impl_name, "CharBraces");
    assert_eq!(skels[0].nodes.len(), 1);
    assert!(matches!(
        skels[0].nodes[0],
        analysis::protocol::Node::Yield(analysis::protocol::CommOp::Collective { ref kind, .. })
            if kind == "RingAll2All"
    ));
}

// ------------------------------------------------------------ rule fixtures

#[test]
fn sim_clock_fixture_pair() {
    let bad = scan_fixture("sim_clock_bad.rs");
    assert!(rules_of(&bad).contains(&"sim-clock"), "findings: {bad:?}");
    assert_eq!(bad[0].line, 3, "Instant::now() is on line 3");
    assert!(scan_fixture("sim_clock_ok.rs").is_empty());
}

#[test]
fn no_panic_fixture_pair() {
    let bad = scan_fixture("no_panic_bad.rs");
    let rules = rules_of(&bad);
    assert_eq!(
        rules.iter().filter(|r| **r == "no-panic").count(),
        3,
        "unwrap + expect + panic!: {bad:?}"
    );
    // Suppressed expect and #[cfg(test)] unwrap must both stay silent.
    assert!(scan_fixture("no_panic_ok.rs").is_empty());
}

#[test]
fn det_iter_fixture_pair() {
    let bad = scan_fixture("det_iter_bad.rs");
    assert!(rules_of(&bad).contains(&"det-iter"), "findings: {bad:?}");
    assert!(scan_fixture("det_iter_ok.rs").is_empty());
}

#[test]
fn lossy_cast_fixture_pair() {
    let bad = scan_fixture("lossy_cast_bad.rs");
    assert!(rules_of(&bad).contains(&"lossy-cast"), "findings: {bad:?}");
    assert!(scan_fixture("lossy_cast_ok.rs").is_empty());
}

#[test]
fn no_stray_print_fixture_pair() {
    let bad = scan_fixture("no_stray_print_bad.rs");
    let rules = rules_of(&bad);
    assert_eq!(
        rules.iter().filter(|r| **r == "no-stray-print").count(),
        2,
        "println! + eprintln!: {bad:?}"
    );
    // Suppressed eprintln, writeln-into-buffer and #[cfg(test)] prints all
    // stay silent.
    assert!(scan_fixture("no_stray_print_ok.rs").is_empty());
}

#[test]
fn dep_hygiene_fixture_pair() {
    let bad = scan_fixture("dep_hygiene_bad.toml");
    let rules = rules_of(&bad);
    assert_eq!(
        rules.iter().filter(|r| **r == "dep-hygiene").count(),
        2,
        "both non-workspace deps flagged: {bad:?}"
    );
    assert!(scan_fixture("dep_hygiene_ok.toml").is_empty());
}

#[test]
fn par_disjoint_fixture_pair() {
    let bad = scan_fixture("par_disjoint_bad.rs");
    assert!(
        rules_of(&bad).contains(&"par-disjoint"),
        "findings: {bad:?}"
    );
    assert_eq!(bad[0].line, 6, "the captured-cursor index is on line 6");
    assert!(scan_fixture("par_disjoint_ok.rs").is_empty());
}

#[test]
fn unit_confusion_fixture_pair() {
    let bad = scan_fixture("unit_confusion_bad.rs");
    let rules = rules_of(&bad);
    assert_eq!(
        rules.iter().filter(|r| **r == "unit-confusion").count(),
        2,
        "direct mix + taint through a binding: {bad:?}"
    );
    // The message names the enclosing function.
    assert!(bad.iter().any(|f| f.message.contains("direct")));
    assert!(bad.iter().any(|f| f.message.contains("via_binding")));
    assert!(scan_fixture("unit_confusion_ok.rs").is_empty());
}

#[test]
fn no_host_block_fixture_pair() {
    let bad = scan_fixture("no_host_block_bad.rs");
    let rules = rules_of(&bad);
    assert_eq!(
        rules.iter().filter(|r| **r == "no-host-block").count(),
        2,
        "thread::sleep + .recv(): {bad:?}"
    );
    assert_eq!(bad[0].line, 6, "the sleep is on line 6");
    assert_eq!(bad[1].line, 7, "the recv is on line 7");
    // Inherent-impl recv and the suppressed rendezvous both stay silent.
    assert!(scan_fixture("no_host_block_ok.rs").is_empty());
}

#[test]
fn collective_divergence_fixture_pair() {
    let bad = scan_fixture("collective_divergence_bad.rs");
    let rules = rules_of(&bad);
    assert_eq!(
        rules
            .iter()
            .filter(|r| **r == "collective-divergence")
            .count(),
        3,
        "gated Barrier + gated Gather + tainted-loop Barrier: {bad:?}"
    );
    let lines: Vec<u32> = bad.iter().map(|f| f.line).collect();
    assert_eq!(lines, [13, 26, 42], "one finding per collective yield");
    assert!(bad[0].message.contains("SkipBarrier"));
    assert!(bad[1].message.contains("GatedGather"));
    assert!(bad[2].message.contains("LoopBarrier"));
    // Symmetric master/worker Gather and a uniform loop bound stay silent.
    assert!(scan_fixture("collective_divergence_ok.rs").is_empty());
}

#[test]
fn unmatched_comm_fixture_pair() {
    let bad = scan_fixture("unmatched_comm_bad.rs");
    let rules = rules_of(&bad);
    assert_eq!(
        rules.iter().filter(|r| **r == "unmatched-comm").count(),
        3,
        "reversed ring + tag typo + recv-before-send cycle: {bad:?}"
    );
    assert_eq!(bad[0].line, 12, "ReversedRing recv is on line 12");
    assert!(bad[0].message.contains("reversed ring"));
    assert_eq!(bad[1].line, 26, "TagTypo recv is on line 26");
    assert!(bad[1].message.contains("tag typo"));
    assert_eq!(bad[2].line, 39, "RecvFirst first recv is on line 39");
    assert!(bad[2].message.contains("recv-before-send cycle"));
    // Correct ring, data-assigned peers, and the allow-annotated reversal
    // all stay silent.
    assert!(scan_fixture("unmatched_comm_ok.rs").is_empty());
}

#[test]
fn stale_allow_fixture_pair() {
    let bad = scan_fixture("stale_allow_bad.rs");
    let rules = rules_of(&bad);
    assert_eq!(rules, ["stale-allow"], "findings: {bad:?}");
    assert_eq!(bad[0].line, 4, "the stale directive is on line 4");
    assert!(scan_fixture("stale_allow_ok.rs").is_empty());
}

#[test]
fn peer_subtract_fixture_pair() {
    // Grouped subtrahend offsets — `(rank + n - (2 - 1)) % n` — must fold
    // to Offset(-1), not silently degrade to an unanalyzable peer.
    let bad = scan_fixture("peer_subtract_bad.rs");
    assert_eq!(rules_of(&bad), ["unmatched-comm"], "findings: {bad:?}");
    assert!(
        bad[0].message.contains("reversed ring"),
        "message names the shape: {}",
        bad[0].message
    );
    assert!(scan_fixture("peer_subtract_ok.rs").is_empty());
}

#[test]
fn interproc_fixture_pair() {
    // The recv lives in a same-file free helper; only interprocedural
    // extraction (inlining with argument substitution) can flag it.
    let bad = scan_fixture("interproc_bad.rs");
    assert_eq!(rules_of(&bad), ["unmatched-comm"], "findings: {bad:?}");
    assert!(scan_fixture("interproc_ok.rs").is_empty());
}

#[test]
fn finding_ids_are_content_derived_and_line_stable() {
    let bad = scan_fixture("peer_subtract_bad.rs");
    assert!(!bad[0].id.is_empty(), "ids assigned after scan");
    // Rescanning the same content yields the same id; shifting the code
    // down a line must not change it (ids hash content, not position).
    let src = std::fs::read_to_string(fixture("peer_subtract_bad.rs")).unwrap();
    let direct = analysis::rules::scan_rust(
        "crates/analysis/tests/fixtures/peer_subtract_bad.rs",
        "crates/analysis/tests/fixtures/peer_subtract_bad.rs",
        &analysis::rules::FileClass::Explicit,
        &src,
    );
    let shifted = analysis::rules::scan_rust(
        "crates/analysis/tests/fixtures/peer_subtract_bad.rs",
        "crates/analysis/tests/fixtures/peer_subtract_bad.rs",
        &analysis::rules::FileClass::Explicit,
        &format!("// an extra leading comment line\n{src}"),
    );
    assert_eq!(direct[0].id, shifted[0].id, "line shifts keep ids stable");
    assert_eq!(direct[0].line + 1, shifted[0].line);
    // The JSON artifact leads with the id, so baselines can be harvested.
    let json = analysis::to_json(&direct);
    assert!(
        json.contains(&format!("{{\"id\": \"{}\"", direct[0].id)),
        "{json}"
    );
}

#[test]
fn to_json_escapes_and_orders_findings() {
    let findings = vec![
        Finding {
            id: "deadbeef-0".into(),
            file: "a.rs".into(),
            line: 3,
            rule: "no-panic",
            message: "say \"no\" to panics\tplease".into(),
        },
        Finding {
            id: "deadbeef-1".into(),
            file: "b\\c.rs".into(),
            line: 7,
            rule: "sim-clock",
            message: "wall clock".into(),
        },
    ];
    let json = analysis::to_json(&findings);
    assert!(json.starts_with('['), "array output: {json}");
    assert!(json.contains(r#""file": "a.rs", "line": 3, "rule": "no-panic""#));
    assert!(json.contains(r#"say \"no\" to panics\tplease"#));
    assert!(json.contains(r#""b\\c.rs""#));
    // Input order is preserved (scan output is already sorted).
    assert!(json.find("a.rs").unwrap() < json.find("sim-clock").unwrap());
    assert_eq!(analysis::to_json(&[]), "[\n]\n");
}

#[test]
fn protocol_findings_round_trip_through_json() {
    let mut findings = scan_fixture("collective_divergence_bad.rs");
    findings.extend(scan_fixture("unmatched_comm_bad.rs"));
    let json = analysis::to_json(&findings);
    // Minimal round-trip: pull each {"file": …, "line": …, "rule": …}
    // record back out and compare against the scan results field by field.
    let records: Vec<&str> = json
        .lines()
        .filter(|l| l.trim_start().starts_with('{'))
        .collect();
    assert_eq!(records.len(), findings.len());
    for (rec, f) in records.iter().zip(&findings) {
        let field = |key: &str| -> &str {
            let start = rec.find(&format!("\"{key}\": ")).expect(key) + key.len() + 4;
            let rest = &rec[start..];
            let end = rest.find(", \"").or_else(|| rest.rfind('}')).expect(key);
            rest[..end].trim().trim_matches('"')
        };
        assert!(field("file").ends_with(&f.file), "{rec}");
        assert_eq!(field("line"), f.line.to_string(), "{rec}");
        assert_eq!(field("rule"), f.rule, "{rec}");
    }
    assert!(json.contains(r#""rule": "collective-divergence""#));
    assert!(json.contains(r#""rule": "unmatched-comm""#));
}

#[test]
fn findings_render_as_file_line_rule() {
    let bad = scan_fixture("lossy_cast_bad.rs");
    let line = bad[0].to_string();
    assert!(
        line.contains("lossy_cast_bad.rs:3: [lossy-cast]"),
        "rendered: {line}"
    );
}

// ------------------------------------------------------------ deadlock gallery

/// Every exhibit in `examples/deadlock_gallery.rs` must be rediscovered by
/// the scanner once its `lint:allow` escape is stripped — same rule, and a
/// span on the line directly below where the (removed) allow sat. This pins
/// the static half of the static/dynamic pairing; the example binary itself
/// pins the runtime half.
#[test]
fn gallery_is_flagged_statically() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/deadlock_gallery.rs");
    let src = std::fs::read_to_string(&path).expect("gallery example exists");
    let mut expected: Vec<(u32, &str)> = Vec::new();
    let mut stripped = String::new();
    for (i, line) in src.lines().enumerate() {
        if let Some(rest) = line.trim_start().strip_prefix("// lint:allow(") {
            let rule = rest.split(')').next().expect("allow names a rule");
            expected.push((
                i as u32 + 2, // the flagged yield sits on the next line
                match rule {
                    "unmatched-comm" => "unmatched-comm",
                    "collective-divergence" => "collective-divergence",
                    other => panic!("unexpected gallery rule {other}"),
                },
            ));
            stripped.push_str("// (allow stripped for the static test)\n");
        } else {
            stripped.push_str(line);
            stripped.push('\n');
        }
    }
    assert_eq!(expected.len(), 4, "four exhibits in the gallery");
    // Example class, not Explicit: proves the protocol rules run on the
    // file class the real workspace walk assigns to examples/.
    let findings = analysis::rules::scan_rust(
        "examples/deadlock_gallery.rs",
        "examples/deadlock_gallery.rs",
        &analysis::rules::FileClass::Example,
        &stripped,
    );
    let got: Vec<(u32, &str)> = findings.iter().map(|f| (f.line, f.rule)).collect();
    assert_eq!(got, expected, "findings: {findings:#?}");
}

// ------------------------------------------------------------ whole workspace

#[test]
fn workspace_scan_is_clean() {
    let root = find_root().expect("workspace root");
    let findings = scan_workspace(&root).expect("workspace scans");
    assert!(
        findings.is_empty(),
        "workspace must stay at zero unsuppressed violations:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
