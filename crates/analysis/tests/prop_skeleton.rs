//! Property tests for skeleton extraction: the communication skeleton —
//! including yield points inlined from same-file free helpers — is purely
//! structural. Inserting comments or blank lines, re-indenting, and moving
//! `lint:allow` directives around must never change the extracted
//! skeletons (modulo source line numbers), or the model checker's verdicts
//! would flap under cosmetic edits.

use analysis::lexer::{lex, Tok, TokKind};
use analysis::protocol::extract_skeletons;
use proptest::prelude::*;
use std::path::PathBuf;

/// Renders a source file's skeletons with every `line: N` / `end_line: N`
/// occurrence blanked, so positionally-shifted but structurally identical
/// extractions compare equal.
fn skeleton_fingerprint(src: &str) -> String {
    let toks = lex(src);
    let code: Vec<&Tok> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
    let rendered = format!("{:#?}", extract_skeletons(&code));
    let mut out = String::new();
    let mut rest = rendered.as_str();
    while let Some(pos) = rest.find("line: ") {
        out.push_str(&rest[..pos + 6]);
        out.push('_');
        rest = &rest[pos + 6..];
        let digits = rest.chars().take_while(char::is_ascii_digit).count();
        rest = &rest[digits..];
    }
    out.push_str(rest);
    out
}

/// Applies a perturbation plan. Each step is `(position seed, kind)`:
/// kind 0 inserts a comment line, kind 1 a blank line, kind 2 re-indents a
/// line, kind 3 moves one `lint:allow` comment line somewhere else. All
/// four are token-stream no-ops for the skeleton extractor on sources
/// without multi-line string literals (true of both pinned files).
fn perturb(src: &str, plan: &[(usize, usize)]) -> String {
    let mut lines: Vec<String> = src.lines().map(str::to_string).collect();
    for &(seed, kind) in plan {
        match kind {
            0 => {
                let at = seed % (lines.len() + 1);
                lines.insert(at, format!("// perturbation noise {seed}"));
            }
            1 => {
                let at = seed % (lines.len() + 1);
                lines.insert(at, String::new());
            }
            2 => {
                let at = seed % lines.len();
                lines[at] = format!("    {}", lines[at]);
            }
            _ => {
                let allow_at: Vec<usize> = lines
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| l.trim_start().starts_with("// lint:allow("))
                    .map(|(i, _)| i)
                    .collect();
                if allow_at.is_empty() {
                    continue;
                }
                let from = allow_at[seed % allow_at.len()];
                let moved = lines.remove(from);
                let to = seed.wrapping_mul(7) % (lines.len() + 1);
                lines.insert(to, moved.trim_start().to_string());
            }
        }
    }
    lines.join("\n")
}

fn pinned_source(rel: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{rel}: {e}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gallery_skeletons_survive_cosmetic_perturbation(
        plan in proptest::collection::vec((0usize..500, 0usize..4), 1..10),
    ) {
        let src = pinned_source("examples/deadlock_gallery.rs");
        let base = skeleton_fingerprint(&src);
        // The gallery extracts the four exhibits, the three controls, and
        // inlines the recv_from helper — a nontrivial baseline.
        prop_assert!(base.contains("HaloExchange"));
        prop_assert!(base.contains("Recv"));
        let shaken = skeleton_fingerprint(&perturb(&src, &plan));
        prop_assert_eq!(base, shaken, "plan {:?} changed the skeletons", plan);
    }

    #[test]
    fn planted_test_skeletons_survive_cosmetic_perturbation(
        plan in proptest::collection::vec((0usize..700, 0usize..4), 1..10),
    ) {
        let src = pinned_source("crates/comm/tests/deadlock.rs");
        let base = skeleton_fingerprint(&src);
        prop_assert!(base.contains("ReversedRing"));
        let shaken = skeleton_fingerprint(&perturb(&src, &plan));
        prop_assert_eq!(base, shaken, "plan {:?} changed the skeletons", plan);
    }
}
