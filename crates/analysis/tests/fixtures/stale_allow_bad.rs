// Bad: the allow names a real rule and carries a reason, but nothing on
// its line or the next triggers lossy-cast — the directive is stale.
pub fn widen(x: u8) -> u64 {
    // lint:allow(lossy-cast): widening is always exact
    x as u64
}
