// Clean: host wall-clock seconds are recorded as diagnostics next to the
// simulated totals, but the two units never meet in arithmetic.
pub fn record(sim_seconds: f64, host_seconds: f64, out: &mut Breakdown) {
    out.total_sim_seconds += sim_seconds;
    out.host_seconds = host_seconds;
}
