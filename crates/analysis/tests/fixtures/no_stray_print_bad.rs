// Planted violations: stdout/stderr writes in non-test library code.
pub fn announce(x: u32) {
    println!("x = {x}");
}

pub fn warn(msg: &str) {
    eprintln!("warning: {msg}");
}
