// Fixture: the same helper-hidden recv, called correctly. The impl sends
// right and takes from the left via `take_from(left)`; after inlining the
// skeleton sees the mirrored pair and stays clean.
fn take_from(src: usize) -> Step<()> {
    Step::Yield(Command::Recv { src, tag: 7 })
}

struct HiddenRing;
impl DeviceProgram for HiddenRing {
    type Output = ();
    fn resume(&mut self, ctx: &mut DeviceCtx, input: Resume) -> Step<()> {
        let n = ctx.num_devices();
        let right = (ctx.rank() + 1) % n;
        let left = (ctx.rank() + n - 1) % n;
        match input {
            Resume::Start => Step::Yield(Command::Send { dst: right, tag: 7, payload: Bytes::new() }),
            Resume::Sent => take_from(left),
            _ => Step::Done(()),
        }
    }
}
