// Planted violation: hash containers in result-producing code.
use std::collections::HashMap;

pub fn tally(xs: &[u32]) -> Vec<(u32, usize)> {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for &x in xs {
        *counts.entry(x).or_default() += 1;
    }
    counts.into_iter().collect()
}
