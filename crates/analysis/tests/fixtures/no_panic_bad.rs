// Planted violations: unwrap/expect/panic! in non-test code.
pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn must(opt: Option<u32>) -> u32 {
    opt.expect("present")
}

pub fn boom() {
    panic!("nope");
}
