// Fixture: the reversed-ring recv hidden behind a same-file free helper.
// The impl sends right and then calls `take_from(right)` — the yield point
// lives in the helper body, so only interprocedural extraction (inlining
// the helper with the caller's argument substituted for `src`) can see
// that the recv names the send's own target and has no mirrored send.
fn take_from(src: usize) -> Step<()> {
    Step::Yield(Command::Recv { src, tag: 7 })
}

struct HiddenReversed;
impl DeviceProgram for HiddenReversed {
    type Output = ();
    fn resume(&mut self, ctx: &mut DeviceCtx, input: Resume) -> Step<()> {
        let n = ctx.num_devices();
        let right = (ctx.rank() + 1) % n;
        match input {
            Resume::Start => Step::Yield(Command::Send { dst: right, tag: 7, payload: Bytes::new() }),
            Resume::Sent => take_from(right),
            _ => Step::Done(()),
        }
    }
}
