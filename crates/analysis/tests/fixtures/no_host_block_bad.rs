// Fixture: blocking host primitives inside a DeviceProgram impl.
struct Spinner;
impl DeviceProgram for Spinner {
    type Output = ();
    fn resume(&mut self, ctx: &mut DeviceCtx, input: Resume) -> Step<()> {
        std::thread::sleep(core::time::Duration::from_millis(1));
        let reply = self.chan.recv();
        drop((ctx, input, reply));
        Step::Done(())
    }
}
