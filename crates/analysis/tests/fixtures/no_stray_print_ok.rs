// Clean: output is returned or written to a caller-supplied sink; the one
// deliberate print is suppressed, and test code may print freely.
use std::fmt::Write as _;

pub fn render(x: u32) -> String {
    let mut out = String::new();
    // writeln! into a buffer is not a stray print.
    let _ = writeln!(out, "x = {x}");
    out
}

pub fn progress(done: usize) {
    // lint:allow(no-stray-print): fixture exercising a well-formed suppression
    eprintln!("{done} done");
}

#[cfg(test)]
mod tests {
    #[test]
    fn printing_is_fine_here() {
        println!("debug dump: {}", super::render(3));
    }
}
