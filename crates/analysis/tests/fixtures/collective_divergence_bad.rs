// Fixture: collectives guarded by rank-dependent control flow. Three
// shapes: an early return that skips a following Barrier, a collective
// nested directly under a rank branch, and one inside a rank-bounded loop.
struct SkipBarrier;
impl DeviceProgram for SkipBarrier {
    type Output = ();
    fn resume(&mut self, ctx: &mut DeviceCtx, input: Resume) -> Step<()> {
        match input {
            Resume::Start => {
                if ctx.rank() == 0 {
                    return Step::Done(());
                }
                Step::Yield(Command::Barrier)
            }
            _ => Step::Done(()),
        }
    }
}
struct GatedGather;
impl DeviceProgram for GatedGather {
    type Output = ();
    fn resume(&mut self, ctx: &mut DeviceCtx, input: Resume) -> Step<()> {
        match input {
            Resume::Start => {
                if ctx.is_master() {
                    Step::Yield(Command::Gather { root: 0, payload: Bytes::new() })
                } else {
                    Step::Done(())
                }
            }
            _ => Step::Done(()),
        }
    }
}
struct LoopBarrier;
impl DeviceProgram for LoopBarrier {
    type Output = ();
    fn resume(&mut self, ctx: &mut DeviceCtx, input: Resume) -> Step<()> {
        drop(input);
        while self.round < ctx.rank() {
            self.round += 1;
            return Step::Yield(Command::Barrier);
        }
        Step::Done(())
    }
}
