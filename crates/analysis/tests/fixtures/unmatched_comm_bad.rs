// Fixture: the three unmatched-comm shapes — a reversed ring (recv names
// the same neighbor the send targets), a tag typo, and a recv-before-send
// cycle (every first-resume path waits for a message nobody ever sends).
struct ReversedRing;
impl DeviceProgram for ReversedRing {
    type Output = ();
    fn resume(&mut self, ctx: &mut DeviceCtx, input: Resume) -> Step<()> {
        let n = ctx.num_devices();
        let right = (ctx.rank() + 1) % n;
        match input {
            Resume::Start => Step::Yield(Command::Send { dst: right, tag: 7, payload: Bytes::new() }),
            Resume::Sent => Step::Yield(Command::Recv { src: right, tag: 7 }),
            _ => Step::Done(()),
        }
    }
}
struct TagTypo;
impl DeviceProgram for TagTypo {
    type Output = ();
    fn resume(&mut self, ctx: &mut DeviceCtx, input: Resume) -> Step<()> {
        let n = ctx.num_devices();
        let right = (ctx.rank() + 1) % n;
        let left = (ctx.rank() + n - 1) % n;
        match input {
            Resume::Start => Step::Yield(Command::Send { dst: right, tag: 7, payload: Bytes::new() }),
            Resume::Sent => Step::Yield(Command::Recv { src: left, tag: 8 }),
            _ => Step::Done(()),
        }
    }
}
struct RecvFirst;
impl DeviceProgram for RecvFirst {
    type Output = ();
    fn resume(&mut self, ctx: &mut DeviceCtx, input: Resume) -> Step<()> {
        let n = ctx.num_devices();
        let right = (ctx.rank() + 1) % n;
        let left = (ctx.rank() + n - 1) % n;
        match input {
            Resume::Start => Step::Yield(Command::Recv { src: left, tag: 3 }),
            Resume::Received(_) => Step::Yield(Command::Send { dst: right, tag: 3, payload: Bytes::new() }),
            _ => Step::Done(()),
        }
    }
}
