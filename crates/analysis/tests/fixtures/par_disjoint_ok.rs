// Clean: every output index is derived from the chunk-range parameters,
// directly or through locals and loop bindings computed from them.
pub fn scale_rows(out: &mut [f32], width: usize) {
    par_chunks_deterministic(out, width, 1, |start, end, chunk| {
        for i in start..end {
            let base = (i - start) * width;
            for j in 0..width {
                chunk[base + j] *= 2.0;
            }
        }
    });
}
