// Fixture: rank-dependent *payloads* with rank-independent protocol. The
// master/worker Gather idiom keeps every rank at the same rendezvous, and
// a uniform loop bound keeps iteration counts equal — neither diverges.
struct SymmetricGather;
impl DeviceProgram for SymmetricGather {
    type Output = ();
    fn resume(&mut self, ctx: &mut DeviceCtx, input: Resume) -> Step<()> {
        match input {
            Resume::Start => {
                if ctx.is_master() {
                    Step::Yield(Command::Gather { root: 0, payload: Bytes::new() })
                } else {
                    Step::Yield(Command::Gather { root: 0, payload: self.chunk() })
                }
            }
            Resume::GatherDone(_) => Step::Done(()),
            _ => Step::Done(()),
        }
    }
}
struct UniformRounds;
impl DeviceProgram for UniformRounds {
    type Output = ();
    fn resume(&mut self, ctx: &mut DeviceCtx, input: Resume) -> Step<()> {
        drop((ctx, input));
        while self.round < ROUNDS {
            self.round += 1;
            return Step::Yield(Command::Barrier);
        }
        Step::Done(())
    }
}
