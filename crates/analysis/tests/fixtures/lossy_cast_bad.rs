// Planted violation: unannotated narrowing cast.
pub fn code(x: f64) -> u8 {
    x as u8
}
