// Fixture: reversed ring spelled with subtract-form offsets. The send
// targets the left neighbor via `(rank + n - (2 - 1)) % n` — a grouped
// subtrahend the normalizer must fold to Offset(-1) — and the recv names
// the *same* neighbor, so no mirrored send exists. Before the normalizer
// handled grouped subtraction this shape silently degraded to Peer::Other
// and escaped the rule.
struct SubtractReversed;
impl DeviceProgram for SubtractReversed {
    type Output = ();
    fn resume(&mut self, ctx: &mut DeviceCtx, input: Resume) -> Step<()> {
        let n = ctx.num_devices();
        let left = (ctx.rank() + n - (2 - 1)) % n;
        match input {
            Resume::Start => Step::Yield(Command::Send { dst: left, tag: 7, payload: Bytes::new() }),
            Resume::Sent => Step::Yield(Command::Recv { src: left, tag: 7 }),
            _ => Step::Done(()),
        }
    }
}
