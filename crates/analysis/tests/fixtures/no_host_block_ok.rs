// Fixture: the same call shapes are legal outside a DeviceProgram impl
// (scheduler-side adapters wait on behalf of devices), and a suppressed
// rendezvous inside one is excused.
struct Adapter;
impl Adapter {
    fn pump(&self) {
        let reply = self.chan.recv();
        drop(reply);
    }
}
impl DeviceProgram for Adapter {
    type Output = ();
    fn resume(&mut self, ctx: &mut DeviceCtx, input: Resume) -> Step<()> {
        // lint:allow(no-host-block): lockstep rendezvous with a paired thread
        let reply = self.chan.recv();
        drop((ctx, input, reply));
        Step::Done(())
    }
}
