// Bad: host wall-clock seconds leak into simulated-clock arithmetic —
// once directly, once through a tainted local binding.
pub fn direct(total_sim_seconds: f64, host_seconds: f64) -> f64 {
    total_sim_seconds + host_seconds
}

pub fn via_binding(total_sim_seconds: f64, wall: Wall) -> f64 {
    let elapsed = wall.host_seconds;
    total_sim_seconds + elapsed
}
