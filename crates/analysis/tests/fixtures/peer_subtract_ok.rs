// Fixture: correct ring spelled with subtract-form offsets. The send goes
// left via the grouped subtrahend `(rank + n - (2 - 1)) % n` (= Offset(-1))
// and the recv takes from the right, so every recv has its mirrored send.
struct SubtractRing;
impl DeviceProgram for SubtractRing {
    type Output = ();
    fn resume(&mut self, ctx: &mut DeviceCtx, input: Resume) -> Step<()> {
        let n = ctx.num_devices();
        let left = (ctx.rank() + n - (2 - 1)) % n;
        let right = (ctx.rank() + 1) % n;
        match input {
            Resume::Start => Step::Yield(Command::Send { dst: left, tag: 7, payload: Bytes::new() }),
            Resume::Sent => Step::Yield(Command::Recv { src: right, tag: 7 }),
            _ => Step::Done(()),
        }
    }
}
