// Clean: the allow is live — it suppresses the narrowing cast below it.
pub fn code(x: f64) -> u8 {
    // lint:allow(lossy-cast): clamped to [0, 255] by the caller
    x as u8
}
