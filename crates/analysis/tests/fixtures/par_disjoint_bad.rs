// Bad: the output chunk is indexed by a captured cursor, not by anything
// derived from the chunk-range parameters — chunks can alias.
pub fn racy_fill(out: &mut [f32], offset: usize) {
    par_chunks_deterministic(out, 1, 1, |start, end, chunk| {
        for _i in start..end {
            chunk[offset] += 1.0;
        }
    });
}
