// Planted violation: host wall-clock in simulation code.
pub fn elapsed_secs() -> f64 {
    let start = std::time::Instant::now();
    start.elapsed().as_secs_f64()
}
