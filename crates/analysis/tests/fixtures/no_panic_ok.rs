// Clean: errors are values; the one deliberate panic carries its reason,
// and test code may unwrap freely.
pub fn first(v: &[u32]) -> Option<u32> {
    v.first().copied()
}

pub fn checked(opt: Option<u32>) -> u32 {
    // lint:allow(no-panic): fixture exercising a well-formed suppression
    opt.expect("caller guarantees Some")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_here() {
        assert_eq!(super::first(&[3]).unwrap(), 3);
    }
}
