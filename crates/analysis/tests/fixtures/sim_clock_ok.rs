// Clean: time is modeled, not measured.
pub fn transfer_secs(bytes: usize, theta: f64, gamma: f64) -> f64 {
    theta * bytes as f64 + gamma
}
