// Fixture: a correct ring (send-first, mirrored offsets through let-bound
// peers), an impl whose peers are assigned data (unverifiable, so never
// flagged), and a deliberate asymmetry excused with the standard allow.
struct RingOk;
impl DeviceProgram for RingOk {
    type Output = ();
    fn resume(&mut self, ctx: &mut DeviceCtx, input: Resume) -> Step<()> {
        let n = ctx.num_devices();
        let right = (ctx.rank() + 1) % n;
        let left = (ctx.rank() + n - 1) % n;
        match input {
            Resume::Start => Step::Yield(Command::Send { dst: right, tag: 3, payload: Bytes::new() }),
            Resume::Sent => Step::Yield(Command::Recv { src: left, tag: 3 }),
            _ => Step::Done(()),
        }
    }
}
struct Assigned;
impl DeviceProgram for Assigned {
    type Output = ();
    fn resume(&mut self, ctx: &mut DeviceCtx, input: Resume) -> Step<()> {
        match input {
            Resume::Start => Step::Yield(Command::Send { dst: self.peer_of(ctx.rank()), tag: 5, payload: Bytes::new() }),
            Resume::Sent => Step::Yield(Command::Recv { src: self.assigned_peer, tag: 5 }),
            _ => Step::Done(()),
        }
    }
}
struct DeliberateReversal;
impl DeviceProgram for DeliberateReversal {
    type Output = ();
    fn resume(&mut self, ctx: &mut DeviceCtx, input: Resume) -> Step<()> {
        let n = ctx.num_devices();
        let right = (ctx.rank() + 1) % n;
        match input {
            Resume::Start => Step::Yield(Command::Send { dst: right, tag: 7, payload: Bytes::new() }),
            // lint:allow(unmatched-comm): heterogeneous pairing — the mirrored send lives in a sibling impl
            Resume::Sent => Step::Yield(Command::Recv { src: right, tag: 7 }),
            _ => Step::Done(()),
        }
    }
}
