// Clean: widening casts are unrestricted and the one narrowing cast is
// annotated with its range argument.
pub fn widen(x: u8) -> u64 {
    x as u64
}

pub fn clamped_code(x: f64) -> u8 {
    // lint:allow(lossy-cast): clamped to [0, 255] on the previous line
    x.clamp(0.0, 255.0) as u8
}
