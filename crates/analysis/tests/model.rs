//! Integration tests for the `adaqp-model` checker: the deadlock gallery's
//! planted exhibits must all be rediscovered with counterexamples whose
//! blamed ranks match the runtime `WaitGraph` diagnosis exhibit-for-exhibit,
//! and every shipped (non-planted) `DeviceProgram` must certify clean at
//! n = 2..4.

use analysis::model::{check_source, ModelOptions, Verdict, ViolationReport};
use analysis::{certificates_json, find_root, workspace_sources};
use comm::WaitCause;
use std::path::PathBuf;

fn gallery_source() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/deadlock_gallery.rs");
    std::fs::read_to_string(&path).expect("gallery example exists")
}

/// Strips the gallery's `model:allow` directives so the checker re-reports
/// every planted exhibit (the strip-the-allows discipline: suppression must
/// be the *only* reason the committed gallery passes).
fn stripped_gallery() -> String {
    let mut stripped = String::new();
    let mut removed = 0;
    for line in gallery_source().lines() {
        if line.trim_start().starts_with("// model:allow(") {
            stripped.push_str("// (model allow stripped for the static test)\n");
            removed += 1;
        } else {
            stripped.push_str(line);
            stripped.push('\n');
        }
    }
    assert_eq!(removed, 4, "four model:allow directives in the gallery");
    stripped
}

fn violation_at(report: &analysis::ProgramReport, n: usize) -> ViolationReport {
    match report.results.iter().find(|(rn, _)| *rn == n) {
        Some((_, Verdict::Violation(v))) => (**v).clone(),
        other => panic!(
            "{}: expected violation at n={n}, got {other:?}",
            report.impl_name
        ),
    }
}

#[test]
fn stripped_gallery_flags_all_four_exhibits_with_runtime_matching_blame() {
    let rep = check_source(
        "examples/deadlock_gallery.rs",
        &stripped_gallery(),
        &ModelOptions::default(),
    );
    assert!(rep.problems.is_empty(), "{:?}", rep.problems);
    let by_name = |name: &str| {
        rep.programs
            .iter()
            .find(|p| p.impl_name == name)
            .unwrap_or_else(|| panic!("{name} extracted"))
    };

    // Exhibit 1 — ReversedRing at n = 4: the runtime graph blocks all four
    // ranks on recv(src = rank+1, tag 7) with four unclaimed tag-7 messages
    // from the left (see the assertions in examples/deadlock_gallery.rs).
    let v = violation_at(by_name("ReversedRing"), 4);
    assert_eq!(v.rule, "deadlock");
    let blocked: Vec<usize> = v.graph.blocked.iter().map(|b| b.rank).collect();
    assert_eq!(blocked, [0, 1, 2, 3]);
    for b in &v.graph.blocked {
        assert_eq!(
            b.cause,
            WaitCause::Recv {
                src: (b.rank + 1) % 4,
                tag: 7
            }
        );
    }
    assert_eq!(v.graph.unclaimed.len(), 4);
    for m in &v.graph.unclaimed {
        assert_eq!((m.src, m.tag), ((m.dst + 3) % 4, 7));
    }
    // A reversed ring is genuinely correct at n = 2 (left == right).
    assert!(matches!(
        by_name("ReversedRing").results[0],
        (2, Verdict::Proved { .. })
    ));

    // Exhibit 2 — TagTypo: everyone blocks on the mistyped tag 8 while the
    // tag-7 sends sit unclaimed.
    let v = violation_at(by_name("TagTypo"), 4);
    assert_eq!(v.rule, "deadlock");
    assert!(v
        .graph
        .blocked
        .iter()
        .all(|b| matches!(b.cause, WaitCause::Recv { tag: 8, .. })));
    assert!(v.graph.unclaimed.iter().all(|m| m.tag == 7));

    // Exhibit 3 — SkippedBarrier: ranks 1..4 park at the barrier front,
    // rank 0 finishes without it — byte-for-byte the runtime attribution.
    let v = violation_at(by_name("SkippedBarrier"), 4);
    assert_eq!(v.rule, "deadlock");
    let blocked: Vec<usize> = v.graph.blocked.iter().map(|b| b.rank).collect();
    assert_eq!(blocked, [1, 2, 3]);
    assert_eq!(v.graph.finished, vec![0]);
    let front = v.graph.collective.expect("collective front recorded");
    assert_eq!(
        (front.kind, front.reached, front.absent),
        ("barrier", vec![1, 2, 3], vec![0])
    );

    // Exhibit 4 — RecvFirstRing: all four ranks block with every mailbox
    // empty (nobody ever sent anything).
    let v = violation_at(by_name("RecvFirstRing"), 4);
    assert_eq!(v.rule, "deadlock");
    assert_eq!(v.graph.blocked.len(), 4);
    assert!(v.graph.unclaimed.is_empty());

    // Every counterexample is an ordered trace from the initial state.
    for name in ["ReversedRing", "TagTypo", "SkippedBarrier", "RecvFirstRing"] {
        let v = violation_at(by_name(name), 4);
        assert!(!v.trace.is_empty(), "{name} carries a trace");
        assert!(
            v.trace.len() <= 8,
            "{name}: shortest trace, got {}",
            v.trace.len()
        );
    }
}

#[test]
fn committed_gallery_is_fully_suppressed() {
    let rep = check_source(
        "examples/deadlock_gallery.rs",
        &gallery_source(),
        &ModelOptions::default(),
    );
    assert!(
        rep.problems.is_empty(),
        "no stale/reason-less allows: {:?}",
        rep.problems
    );
    for p in &rep.programs {
        assert!(
            !p.has_violation() || p.suppressed,
            "{} must be proved or suppressed",
            p.impl_name
        );
        assert!(
            !p.has_unverifiable(),
            "{} is inside the model fragment",
            p.impl_name
        );
    }
    // The control group is proved outright, including the helper-hidden
    // recv in HaloExchange (interprocedural extraction).
    for name in ["HaloExchange", "AssignerRound", "GhostSync"] {
        let p = rep
            .programs
            .iter()
            .find(|p| p.impl_name == name)
            .expect(name);
        assert!(!p.has_violation(), "{name} is correct");
        for (n, v) in &p.results {
            assert!(
                matches!(v, Verdict::Proved { .. }),
                "{name} proved at n={n}"
            );
        }
    }
}

#[test]
fn workspace_programs_certify_clean_or_suppressed() {
    let root = find_root().expect("workspace root");
    let opts = ModelOptions::default();
    let mut programs = Vec::new();
    for (rel, path) in workspace_sources(&root).expect("workspace sources") {
        let src = std::fs::read_to_string(&path).expect("source readable");
        let rep = check_source(&rel, &src, &opts);
        assert!(
            rep.problems.is_empty(),
            "{rel}: directive problems: {:?}",
            rep.problems
        );
        programs.extend(rep.programs);
    }
    assert!(
        programs.len() >= 10,
        "the walk sees the shipped programs, got {}",
        programs.len()
    );
    for p in &programs {
        assert!(
            !p.has_violation() || p.suppressed,
            "{}::{} has an unsuppressed violation",
            p.file,
            p.impl_name
        );
        assert!(
            !p.has_unverifiable(),
            "{}::{} fell outside the model fragment",
            p.file,
            p.impl_name
        );
    }
    // At least the cluster's own FnProgram plus the gallery control group
    // are proved outright at every n.
    let proved = programs
        .iter()
        .filter(|p| !p.has_violation() && !p.has_unverifiable())
        .count();
    assert!(proved >= 4, "shipped programs prove clean, got {proved}");

    // The certificate artifact round-trips: every program keyed, balanced
    // JSON, `_`-prefixed proof sizes present.
    let json = certificates_json(&programs, &opts);
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    for p in &programs {
        assert!(
            json.contains(&format!("{}::{}", p.file, p.impl_name)),
            "{} keyed",
            p.impl_name
        );
    }
    assert!(json.contains("\"_states\""));
    assert!(json.contains("\"summary\""));
}
