//! Brace-tree scope analysis over the lexer's token stream.
//!
//! The first-generation rules treated a file as a flat token sequence;
//! that is enough for "this identifier may not appear here" rules but not
//! for relational ones. This module adds just enough structure on top of
//! [`crate::lexer`] to group tokens into *function scopes*: for every `fn`
//! item (including nested ones) it records the name and the token-index
//! range of the brace-matched body. Scope-aware rules (`par-disjoint`,
//! `unit-confusion`) walk those ranges so that, e.g., a taint assigned to
//! a local in one function can never leak into the analysis of another.
//!
//! Like the lexer, this is deliberately *not* a parser: it only matches
//! delimiters (which the lexer guarantees are real code, never comment or
//! string content) and knows the two places matching needs care — `->`
//! arrows inside generic parameter lists, and `fn` the keyword vs. `fn`
//! pointer types (the latter is never followed by an identifier).

use crate::lexer::Tok;

/// One `fn` item's scope: its name and the token-index range of its body.
#[derive(Debug, Clone)]
pub struct FnScope {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Half-open token-index range of the body, exclusive of the braces.
    /// Indexes into the same slice passed to [`fn_scopes`]. Nested functions
    /// produce their own scopes whose ranges lie inside the parent's.
    pub body: (usize, usize),
}

/// Index of the token matching the opening delimiter at `open` (`(`, `[` or
/// `{`), counting only that delimiter pair. Returns `code.len()` when the
/// delimiter never closes (malformed input degrades gracefully: the "scope"
/// runs to end of file instead of derailing the scan).
pub fn matching(code: &[&Tok], open: usize) -> usize {
    let (o, c) = match code.get(open) {
        Some(t) if t.is_punct('(') => ('(', ')'),
        Some(t) if t.is_punct('[') => ('[', ']'),
        Some(t) if t.is_punct('{') => ('{', '}'),
        _ => return code.len(),
    };
    let mut depth = 1usize;
    let mut i = open + 1;
    while i < code.len() {
        if code[i].is_punct(o) {
            depth += 1;
        } else if code[i].is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    code.len()
}

/// Collects every `fn` item's scope from a comment-free token slice.
///
/// Nested functions are reported as separate scopes (with overlapping body
/// ranges); callers that attribute findings per-line should de-duplicate.
/// Bodyless functions (trait method declarations) produce no scope.
pub fn fn_scopes(code: &[&Tok]) -> Vec<FnScope> {
    let mut scopes = Vec::new();
    let mut i = 0;
    while i < code.len() {
        // `fn` pointer types (`fn(usize) -> usize`) have no name ident.
        let is_fn_item = code[i].is_ident("fn")
            && code
                .get(i + 1)
                .is_some_and(|t| t.kind == crate::lexer::TokKind::Ident);
        if !is_fn_item {
            i += 1;
            continue;
        }
        let name = code[i + 1].text.clone();
        let line = code[i].line;
        let mut j = i + 2;
        // Generic parameter list: angle-match, treating `->` (inside `Fn(..)
        // -> T` bounds) as a unit so its `>` doesn't close the list.
        if code.get(j).is_some_and(|t| t.is_punct('<')) {
            let mut depth = 1usize;
            j += 1;
            while j < code.len() && depth > 0 {
                if code[j].is_punct('<') {
                    depth += 1;
                } else if code[j].is_punct('>') && !code[j - 1].is_punct('-') {
                    depth -= 1;
                }
                j += 1;
            }
        }
        if code.get(j).is_some_and(|t| t.is_punct('(')) {
            j = matching(code, j) + 1;
        }
        // Return type / where clause: the body starts at the first `{`; a
        // `;` first means a bodyless declaration.
        while j < code.len() && !code[j].is_punct('{') && !code[j].is_punct(';') {
            j += 1;
        }
        if j < code.len() && code[j].is_punct('{') {
            let end = matching(code, j);
            scopes.push(FnScope {
                name,
                line,
                body: (j + 1, end),
            });
        }
        // Resume right after the signature so nested `fn` items inside this
        // body are discovered too.
        i += 2;
    }
    scopes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, TokKind};

    fn scopes_of(src: &str) -> Vec<FnScope> {
        let toks = lex(src);
        let code: Vec<&Tok> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
        fn_scopes(&code)
    }

    #[test]
    fn finds_top_level_and_nested_fns() {
        let src =
            "fn outer(x: u32) -> u32 {\n    fn inner(y: u32) -> u32 { y + 1 }\n    inner(x)\n}\n";
        let scopes = scopes_of(src);
        let names: Vec<&str> = scopes.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"]);
        // Inner's body range nests inside outer's.
        assert!(scopes[1].body.0 > scopes[0].body.0);
        assert!(scopes[1].body.1 < scopes[0].body.1);
    }

    #[test]
    fn generics_with_fn_bounds_do_not_derail() {
        let src = "fn apply<F: Fn(usize) -> usize>(f: F) -> usize { f(1) }\n";
        let scopes = scopes_of(src);
        assert_eq!(scopes.len(), 1);
        assert_eq!(scopes[0].name, "apply");
        assert!(scopes[0].body.1 > scopes[0].body.0);
    }

    #[test]
    fn fn_pointer_types_and_declarations_are_skipped() {
        let src = "trait T { fn required(&self); }\ntype Op = fn(u32) -> u32;\nfn real() {}\n";
        let scopes = scopes_of(src);
        assert_eq!(scopes.len(), 1);
        assert_eq!(scopes[0].name, "real");
    }

    #[test]
    fn matching_handles_nesting_and_malformed_input() {
        let toks = lex("( a ( b ) c )");
        let code: Vec<&Tok> = toks.iter().collect();
        assert_eq!(matching(&code, 0), code.len() - 1);
        let toks = lex("( never closed");
        let code: Vec<&Tok> = toks.iter().collect();
        assert_eq!(matching(&code, 0), code.len());
    }
}
