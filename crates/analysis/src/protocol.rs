//! Communication-skeleton extraction and protocol-conformance rules.
//!
//! Every [`crate::rules`] rule so far asks a *local* question ("may this
//! identifier appear here?"). Deadlocks are not local: a `DeviceProgram`
//! whose ring exchange flips a peer expression, or whose `Barrier` hides
//! under a rank-dependent branch, compiles fine and only fails at runtime
//! as a `ClusterError::Deadlock`. This module extracts a per-impl
//! **communication skeleton** — a small control-flow tree over the yield
//! points (`Command::{Send,Recv,Barrier,…}` constructions), branches and
//! loops of each `impl … DeviceProgram for …` block — and checks it as two
//! rules:
//!
//! * **`collective-divergence`** — a collective yield reachable under a
//!   branch or loop whose condition is tainted by rank-local data (`rank`,
//!   `is_master`, or a `let` derived from them), so some ranks may never
//!   join the rendezvous. Exhaustive branches whose arms all yield the
//!   same collective trace are exempt (the master/worker `Gather` idiom
//!   diverges in payload, not in protocol). A rank-tainted early exit
//!   poisons the rest of the sequence: ranks that returned cannot join a
//!   later collective.
//! * **`unmatched-comm`** — within a lockstep phase (one program on all
//!   ranks), a `Recv { src, tag }` whose peer normalizes to rank-offset
//!   arithmetic (`(rank + k) % n`) that no reachable `Send` mirrors with
//!   the opposite offset and the same tag — catching reversed rings and
//!   tag typos — plus a first-yield pass: if *every* first-resume path
//!   yields a `Recv`, no rank can ever produce the first message
//!   (recv-before-send cycle).
//!
//! Both rules are deliberately conservative. Peers that do not normalize
//! to `rank ± k (mod n)` with `|k| <= 2` are unverifiable and never
//! flagged; impls with no `Send` at all are assumed to be one half of a
//! heterogeneous pairing and skipped by the mirror check; anything the
//! extractor cannot see (commands built outside the impl, trait-object
//! indirection) yields an empty skeleton, which is always clean. The
//! escape hatch is the standard `// lint:allow(<rule>): <reason>`. The
//! runtime twin of this pass is `comm::waitgraph` — the wait-for graph a
//! real deadlock produces names the same ranks these rules predict
//! (`examples/deadlock_gallery.rs` pins the pairing).

use crate::lexer::{Tok, TokKind};
use crate::rules::Finding;
use crate::scopes;
use std::collections::{BTreeMap, BTreeSet};

/// `Resume` variants that answer a previous yield: a match arm naming one
/// of these (and not `Start`) cannot be taken on the first resumption.
const RESPONSE_VARIANTS: [&str; 7] = [
    "Sent",
    "Received",
    "BarrierDone",
    "RingDone",
    "BroadcastDone",
    "GatherDone",
    "ScatterDone",
];

/// Command kinds that park every rank at a rendezvous.
const COLLECTIVE_KINDS: [&str; 5] = ["Barrier", "RingAll2All", "Broadcast", "Gather", "Scatter"];

/// A peer expression, normalized for mirror-matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Peer {
    /// `(rank + k) % n` for `|k| <= 2` (`n`-multiples contribute 0).
    Offset(i64),
    /// A constant rank (roots, masters).
    Literal(i64),
    /// Anything the normalizer cannot verify; never flagged.
    Other(String),
}

/// One yield point of the skeleton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommOp {
    /// `Command::Send { dst, tag, .. }` construction.
    Send {
        /// Normalized destination.
        peer: Peer,
        /// Tag expression text (after one `let` resolution).
        tag: String,
        /// 1-based source line.
        line: u32,
    },
    /// `Command::Recv { src, tag }` construction.
    Recv {
        /// Normalized source.
        peer: Peer,
        /// Tag expression text (after one `let` resolution).
        tag: String,
        /// 1-based source line.
        line: u32,
    },
    /// A collective construction (`Barrier`, `RingAll2All`, …).
    Collective {
        /// The command kind identifier.
        kind: String,
        /// 1-based source line.
        line: u32,
    },
}

/// One node of the communication skeleton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A yield point.
    Yield(CommOp),
    /// An `if`/`else` chain or `match`.
    Branch(Branch),
    /// A `for`/`while`/`loop` body.
    Loop(LoopNode),
}

/// A branch over arms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Branch {
    /// 1-based line of the branch keyword.
    pub line: u32,
    /// Condition/scrutinee mentions rank-local data.
    pub rank_tainted: bool,
    /// Every control path goes through an arm (`match`, or `if` with a
    /// final `else`).
    pub exhaustive: bool,
    /// The branch dispatches on the `Resume` input (so at the first
    /// resumption exactly one arm — the one matching `Start` — is live).
    pub resume_match: bool,
    /// The arms, in source order.
    pub arms: Vec<Arm>,
}

/// One branch arm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arm {
    /// This arm can be taken on the very first resumption.
    pub live_at_first: bool,
    /// The arm body mentions `return` or `Done` (it may end the program
    /// or exit `resume` early).
    pub has_exit: bool,
    /// Nested skeleton nodes.
    pub nodes: Vec<Node>,
}

/// A loop body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopNode {
    /// 1-based line of the loop keyword.
    pub line: u32,
    /// The bound/condition mentions rank-local data.
    pub rank_tainted: bool,
    /// Nested skeleton nodes.
    pub nodes: Vec<Node>,
}

/// The communication skeleton of one `DeviceProgram` impl.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Skeleton {
    /// The implementing type's name.
    pub impl_name: String,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
    /// Top-level nodes in source order.
    pub nodes: Vec<Node>,
}

/// Extracts the communication skeleton of every `impl … DeviceProgram …
/// for …` block in a comment-free token slice.
pub fn extract_skeletons(code: &[&Tok]) -> Vec<Skeleton> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !code[i].is_ident("impl") {
            i += 1;
            continue;
        }
        let impl_line = code[i].line;
        let mut j = i + 1;
        let (mut saw_trait, mut for_at) = (false, None);
        while j < code.len() && !code[j].is_punct('{') && !code[j].is_punct(';') {
            if code[j].is_ident("DeviceProgram") {
                saw_trait = true;
            } else if code[j].is_ident("for") && for_at.is_none() {
                for_at = Some(j);
            }
            j += 1;
        }
        let (Some(for_at), true) = (for_at, saw_trait) else {
            i = j + 1;
            continue;
        };
        if j >= code.len() || !code[j].is_punct('{') {
            i = j + 1;
            continue;
        }
        let impl_name = code[(for_at + 1)..j]
            .iter()
            .find(|t| t.kind == TokKind::Ident)
            .map_or_else(|| "?".to_string(), |t| t.text.clone());
        let close = scopes::matching(code, j);
        let mut parser = Parser {
            code,
            taint: BTreeSet::new(),
            defs: BTreeMap::new(),
        };
        out.push(Skeleton {
            impl_name,
            line: impl_line,
            nodes: parser.parse_seq(j + 1, close.min(code.len())),
        });
        i = close + 1;
    }
    out
}

/// True when `text` is intrinsically rank-local.
fn is_rank_marker(text: &str) -> bool {
    text == "rank" || text == "is_master"
}

struct Parser<'a> {
    code: &'a [&'a Tok],
    /// Identifiers carrying rank-local values (markers plus `let` taint).
    taint: BTreeSet<String>,
    /// Single-binding `let` initializers, for peer/tag resolution.
    defs: BTreeMap<String, Vec<String>>,
}

impl Parser<'_> {
    fn mentions_rank(&self, lo: usize, hi: usize) -> bool {
        self.code[lo..hi.min(self.code.len())].iter().any(|t| {
            t.kind == TokKind::Ident && (is_rank_marker(&t.text) || self.taint.contains(&t.text))
        })
    }

    fn mentions_ident(&self, lo: usize, hi: usize, name: &str) -> bool {
        self.code[lo..hi.min(self.code.len())]
            .iter()
            .any(|t| t.is_ident(name))
    }

    fn mentions_response_variant(&self, lo: usize, hi: usize) -> bool {
        self.code[lo..hi.min(self.code.len())]
            .iter()
            .any(|t| RESPONSE_VARIANTS.iter().any(|v| t.is_ident(v)))
    }

    /// Scans forward to the first occurrence of `c` at delimiter depth 0,
    /// starting at `lo`; returns `hi` if not found.
    fn find_at_depth(&self, lo: usize, hi: usize, c: char) -> usize {
        let mut depth = 0usize;
        for (k, t) in self
            .code
            .iter()
            .enumerate()
            .take(hi.min(self.code.len()))
            .skip(lo)
        {
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && t.is_punct(c) {
                return k;
            }
        }
        hi
    }

    /// Parses a statement/expression sequence into skeleton nodes. Plain
    /// braces are transparent; `let`, branches, loops and `Command`
    /// constructions are structured.
    fn parse_seq(&mut self, lo: usize, hi: usize) -> Vec<Node> {
        let mut nodes = Vec::new();
        let mut i = lo;
        while i < hi.min(self.code.len()) {
            let t = self.code[i];
            if t.is_ident("let") {
                i = self.handle_let(i, hi);
            } else if t.is_ident("if") {
                let (branch, next) = self.parse_if(i, hi);
                nodes.push(Node::Branch(branch));
                i = next;
            } else if t.is_ident("match") {
                let (branch, next) = self.parse_match(i, hi);
                nodes.push(Node::Branch(branch));
                i = next;
            } else if t.is_ident("for") || t.is_ident("while") || t.is_ident("loop") {
                let (lp, next) = self.parse_loop(i, hi);
                nodes.push(Node::Loop(lp));
                i = next;
            } else if t.is_ident("Command")
                && self.code.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && self.code.get(i + 2).is_some_and(|t| t.is_punct(':'))
            {
                let (op, next) = self.parse_command(i, hi);
                if let Some(op) = op {
                    nodes.push(Node::Yield(op));
                }
                i = next;
            } else {
                i += 1;
            }
        }
        nodes
    }

    /// Records a `let` binding's taint and (for single-ident patterns) its
    /// initializer tokens, then resumes the walk *inside* the initializer
    /// so commands and branches there are still seen.
    fn handle_let(&mut self, i: usize, hi: usize) -> usize {
        let mut pat = Vec::new();
        let mut j = i + 1;
        let mut in_type = false;
        while j < hi && !self.code[j].is_punct('=') && !self.code[j].is_punct(';') {
            let t = self.code[j];
            if t.is_punct(':') {
                in_type = true;
            } else if !in_type
                && t.kind == TokKind::Ident
                && !matches!(t.text.as_str(), "mut" | "ref")
            {
                pat.push(t.text.clone());
            }
            j += 1;
        }
        if j >= hi || !self.code[j].is_punct('=') {
            return j + 1;
        }
        // Read ahead over the initializer (to the `;` at depth 0) without
        // consuming it: the caller re-walks it for nested structure.
        let mut depth = 0usize;
        let mut k = j + 1;
        let mut texts = Vec::new();
        let mut tainted = false;
        while k < hi.min(self.code.len()) {
            let t = self.code[k];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && t.is_punct(';') {
                break;
            }
            if t.kind == TokKind::Ident && (is_rank_marker(&t.text) || self.taint.contains(&t.text))
            {
                tainted = true;
            }
            texts.push(t.text.clone());
            k += 1;
        }
        if tainted {
            self.taint.extend(pat.iter().cloned());
        }
        if pat.len() == 1 && !texts.is_empty() {
            self.defs.insert(pat.remove(0), texts);
        }
        j + 1
    }

    fn parse_if(&mut self, i: usize, hi: usize) -> (Branch, usize) {
        let line = self.code[i].line;
        let open = self.find_at_depth(i + 1, hi, '{');
        let cond = (i + 1, open);
        let mut branch = Branch {
            line,
            rank_tainted: self.mentions_rank(cond.0, cond.1),
            exhaustive: false,
            resume_match: false,
            arms: Vec::new(),
        };
        if open >= hi {
            return (branch, hi);
        }
        // An arm guarded by a response-variant condition (and not `Start`)
        // cannot be taken on the first resumption.
        let then_live = !self.mentions_response_variant(cond.0, cond.1)
            || self.mentions_ident(cond.0, cond.1, "Start");
        let close = scopes::matching(self.code, open);
        branch.arms.push(self.parse_arm(open + 1, close, then_live));
        let mut next = close + 1;
        if self.code.get(next).is_some_and(|t| t.is_ident("else")) {
            if self.code.get(next + 1).is_some_and(|t| t.is_ident("if")) {
                // Flatten the `else if` chain into one arm list.
                let (rest, after) = self.parse_if(next + 1, hi);
                branch.rank_tainted |= rest.rank_tainted;
                branch.exhaustive = rest.exhaustive;
                branch.arms.extend(rest.arms);
                next = after;
            } else if self.code.get(next + 1).is_some_and(|t| t.is_punct('{')) {
                let eclose = scopes::matching(self.code, next + 1);
                branch.arms.push(self.parse_arm(next + 2, eclose, true));
                branch.exhaustive = true;
                next = eclose + 1;
            }
        }
        (branch, next)
    }

    fn parse_match(&mut self, i: usize, hi: usize) -> (Branch, usize) {
        let line = self.code[i].line;
        let open = self.find_at_depth(i + 1, hi, '{');
        let scrutinee = (i + 1, open);
        let mut branch = Branch {
            line,
            rank_tainted: self.mentions_rank(scrutinee.0, scrutinee.1),
            // A Rust `match` is exhaustive by construction.
            exhaustive: true,
            resume_match: self.mentions_ident(scrutinee.0, scrutinee.1, "input"),
            arms: Vec::new(),
        };
        if open >= hi {
            return (branch, hi);
        }
        let close = scopes::matching(self.code, open);
        let mut patterns: Vec<(usize, usize)> = Vec::new();
        let mut k = open + 1;
        while k < close.min(self.code.len()) {
            // Pattern: tokens to the `=>` arrow (lexed as `=` `>`) at depth 0.
            let pat_lo = k;
            let mut depth = 0usize;
            while k < close {
                let t = self.code[k];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth = depth.saturating_sub(1);
                } else if depth == 0
                    && t.is_punct('=')
                    && self.code.get(k + 1).is_some_and(|n| n.is_punct('>'))
                {
                    break;
                }
                k += 1;
            }
            if k >= close {
                break;
            }
            let pat = (pat_lo, k);
            k += 2; // past `=>`
            let (body_lo, body_hi, after) = if self.code.get(k).is_some_and(|t| t.is_punct('{')) {
                let bclose = scopes::matching(self.code, k);
                let after = if self.code.get(bclose + 1).is_some_and(|t| t.is_punct(',')) {
                    bclose + 2
                } else {
                    bclose + 1
                };
                (k + 1, bclose, after)
            } else {
                let end = self.find_at_depth_all(k, close, ',');
                (k, end, end + 1)
            };
            branch.rank_tainted |=
                self.mentions_rank(pat.0, pat.1) && self.mentions_ident(pat.0, pat.1, "if");
            if !branch.resume_match && self.mentions_ident(pat.0, pat.1, "Resume") {
                branch.resume_match = true;
            }
            patterns.push(pat);
            branch.arms.push(self.parse_arm(body_lo, body_hi, true));
            k = after;
        }
        if branch.resume_match {
            // First-match semantics: the first arm whose pattern can match
            // `Start` (names it, or names no response variant — wildcards
            // and bindings) is the only arm live at the first resumption.
            let mut start_taken = false;
            for (arm, pat) in branch.arms.iter_mut().zip(&patterns) {
                let can_match_start = self.mentions_ident(pat.0, pat.1, "Start")
                    || !self.mentions_response_variant(pat.0, pat.1);
                arm.live_at_first = can_match_start && !start_taken;
                start_taken |= can_match_start;
            }
        }
        (branch, close + 1)
    }

    /// Like [`Self::find_at_depth`] but also depth-tracks braces (for match
    /// arm expressions containing struct literals).
    fn find_at_depth_all(&self, lo: usize, hi: usize, c: char) -> usize {
        let mut depth = 0usize;
        for (k, t) in self
            .code
            .iter()
            .enumerate()
            .take(hi.min(self.code.len()))
            .skip(lo)
        {
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && t.is_punct(c) {
                return k;
            }
        }
        hi
    }

    fn parse_arm(&mut self, lo: usize, hi: usize, live_at_first: bool) -> Arm {
        let has_exit = self.code[lo..hi.min(self.code.len())]
            .iter()
            .any(|t| t.is_ident("return") || t.is_ident("Done"));
        Arm {
            live_at_first,
            has_exit,
            nodes: self.parse_seq(lo, hi),
        }
    }

    fn parse_loop(&mut self, i: usize, hi: usize) -> (LoopNode, usize) {
        let line = self.code[i].line;
        let open = self.find_at_depth(i + 1, hi, '{');
        // `for pat in bound {` / `while cond {` / `loop {`: the taint source
        // is everything between the keyword and the block (for `for`, the
        // binding left of `in` is harmless to include — `rank` there is
        // rank-dependent anyway).
        let rank_tainted = self.mentions_rank(i + 1, open);
        if open >= hi {
            return (
                LoopNode {
                    line,
                    rank_tainted,
                    nodes: Vec::new(),
                },
                hi,
            );
        }
        let close = scopes::matching(self.code, open);
        let nodes = self.parse_seq(open + 1, close);
        (
            LoopNode {
                line,
                rank_tainted,
                nodes,
            },
            close + 1,
        )
    }

    /// Parses a `Command::Kind { … }` construction at `i` (`i` indexes the
    /// `Command` ident). Returns `None` for non-command paths and for
    /// shapes that look like patterns (missing peer field).
    fn parse_command(&mut self, i: usize, hi: usize) -> (Option<CommOp>, usize) {
        let Some(kind_tok) = self.code.get(i + 3) else {
            return (None, i + 3);
        };
        let kind = kind_tok.text.clone();
        let line = kind_tok.line;
        let braced = self.code.get(i + 4).is_some_and(|t| t.is_punct('{'));
        if COLLECTIVE_KINDS.contains(&kind.as_str()) {
            let next = if braced {
                scopes::matching(self.code, i + 4) + 1
            } else {
                i + 4
            };
            return (Some(CommOp::Collective { kind, line }), next);
        }
        if kind != "Send" && kind != "Recv" {
            return (None, i + 4);
        }
        if !braced {
            // A bare `Command::Send` path (e.g. in a `matches!`) is not a
            // construction.
            return (None, i + 4);
        }
        let close = scopes::matching(self.code, i + 4);
        let fields = self.parse_fields(i + 5, close.min(hi.min(self.code.len())));
        let peer_field = if kind == "Send" { "dst" } else { "src" };
        let Some(peer_texts) = fields.get(peer_field) else {
            // No peer field: a `..` rest pattern or a malformed shape.
            return (None, close + 1);
        };
        let peer = self.normalize_peer(peer_texts);
        let tag = self.resolve_tag(fields.get("tag").cloned().unwrap_or_default());
        let op = if kind == "Send" {
            CommOp::Send { peer, tag, line }
        } else {
            CommOp::Recv { peer, tag, line }
        };
        (Some(op), close + 1)
    }

    /// Splits a brace-enclosed field list into `name -> expression tokens`
    /// (shorthand fields map to their own name).
    fn parse_fields(&self, lo: usize, hi: usize) -> BTreeMap<String, Vec<String>> {
        let mut fields = BTreeMap::new();
        let mut k = lo;
        while k < hi {
            let end = self.find_at_depth_all(k, hi, ',');
            let slice = &self.code[k..end.min(self.code.len())];
            if let Some(name_tok) = slice.first().filter(|t| t.kind == TokKind::Ident) {
                let expr: Vec<String> = if slice.get(1).is_some_and(|t| t.is_punct(':'))
                    && !slice.get(2).is_some_and(|t| t.is_punct(':'))
                {
                    slice[2..].iter().map(|t| t.text.clone()).collect()
                } else {
                    vec![name_tok.text.clone()]
                };
                if !expr.is_empty() {
                    fields.insert(name_tok.text.clone(), expr);
                }
            }
            k = end + 1;
        }
        fields
    }

    /// Resolves a single-identifier expression through the `let` map, up to
    /// three hops (`let n = ctx.num_devices(); let right = (rank + 1) % n;`).
    fn resolve_texts(&self, texts: &[String], depth: usize) -> Vec<String> {
        if depth == 0 || texts.len() != 1 {
            return texts.to_vec();
        }
        match self.defs.get(&texts[0]) {
            Some(def) => self.resolve_texts(def, depth - 1),
            None => texts.to_vec(),
        }
    }

    fn resolve_tag(&self, texts: Vec<String>) -> String {
        self.resolve_texts(&texts, 1).join(" ")
    }

    /// Normalizes a peer expression to [`Peer`]. The evaluator understands
    /// `rank`/`ctx.rank()` terms, integer constants, and `n`-multiples
    /// (`n`, `num_devices`, and `% n` wraps contribute 0 mod n); `ctx` and
    /// `self` receivers are transparent. Anything else — or a net offset
    /// with magnitude above 2, which real neighbor exchanges never use —
    /// degrades to `Other` and is never flagged.
    fn normalize_peer(&self, texts: &[String]) -> Peer {
        let texts = self.resolve_texts(texts, 3);
        let joined = texts.join(" ");
        let mut sign = 1i64;
        let mut rank_terms = 0i64;
        let mut konst = 0i64;
        let mut unknown = false;
        for t in &texts {
            match t.as_str() {
                "(" | ")" | "." => {}
                "+" | "%" => sign = 1,
                "-" => sign = -1,
                "rank" => rank_terms += sign,
                "n" | "num_devices" => {} // ≡ 0 (mod n)
                "ctx" | "self" | "as" | "usize" | "i64" | "u64" | "u32" | "i32" => {}
                s if s.chars().next().is_some_and(|c| c.is_ascii_digit()) => {
                    match s.replace('_', "").parse::<i64>() {
                        Ok(v) => konst += sign * v,
                        Err(_) => unknown = true,
                    }
                }
                _ => unknown = true,
            }
        }
        if unknown {
            Peer::Other(joined)
        } else if rank_terms == 1 && konst.abs() <= 2 {
            Peer::Offset(konst)
        } else if rank_terms == 0 {
            Peer::Literal(konst)
        } else {
            Peer::Other(joined)
        }
    }
}

// --------------------------------------------------------------- the rules

/// Runs both protocol rules over every `DeviceProgram` impl in `code`,
/// appending raw findings (suppression is the caller's job). Impls whose
/// header line falls in a `#[cfg(test)]` range are skipped, consistent
/// with the other structural rules.
pub fn check(display_path: &str, code: &[&Tok], exempt: &[(u32, u32)], raw: &mut Vec<Finding>) {
    for sk in extract_skeletons(code) {
        if exempt.iter().any(|&(a, b)| sk.line >= a && sk.line <= b) {
            continue;
        }
        check_divergence(display_path, &sk, raw);
        check_unmatched(display_path, &sk, raw);
    }
}

/// The collectives a node sequence yields, rendered as a structural trace
/// string for arm-symmetry comparison.
fn collective_trace(nodes: &[Node]) -> String {
    let mut out = String::new();
    for node in nodes {
        match node {
            Node::Yield(CommOp::Collective { kind, .. }) => {
                out.push_str(kind);
                out.push(';');
            }
            Node::Yield(_) => {}
            Node::Branch(b) => {
                let arms: Vec<String> = b.arms.iter().map(|a| collective_trace(&a.nodes)).collect();
                out.push('(');
                out.push_str(&arms.join("|"));
                out.push(')');
            }
            Node::Loop(l) => {
                out.push_str("loop(");
                out.push_str(&collective_trace(&l.nodes));
                out.push(')');
            }
        }
    }
    out
}

/// Walks the skeleton flagging collective yields reachable under
/// rank-divergent control flow.
fn check_divergence(display_path: &str, sk: &Skeleton, raw: &mut Vec<Finding>) {
    walk_divergence(display_path, &sk.impl_name, &sk.nodes, false, raw);
}

fn walk_divergence(
    display_path: &str,
    impl_name: &str,
    nodes: &[Node],
    diverged: bool,
    raw: &mut Vec<Finding>,
) {
    let mut diverged = diverged;
    for node in nodes {
        match node {
            Node::Yield(CommOp::Collective { kind, line }) if diverged => {
                raw.push(Finding {
                    file: display_path.to_string(),
                    line: *line,
                    rule: "collective-divergence",
                    message: format!(
                        "`{kind}` yield in impl `{impl_name}` is guarded by rank-dependent \
                         control flow; ranks that skip it never join the rendezvous \
                         and the cluster deadlocks"
                    ),
                });
            }
            Node::Yield(_) => {}
            Node::Branch(b) => {
                let any_exit = b.arms.iter().any(|a| a.has_exit);
                let all_exit = b.arms.iter().all(|a| a.has_exit);
                // Master/worker symmetry: an exhaustive rank-branch whose
                // arms all yield the same collective trace (and none exits)
                // keeps every rank at the same rendezvous — payloads
                // diverge, the protocol does not.
                let symmetric = b.rank_tainted
                    && b.exhaustive
                    && !any_exit
                    && !b.arms.is_empty()
                    && b.arms
                        .windows(2)
                        .all(|w| collective_trace(&w[0].nodes) == collective_trace(&w[1].nodes));
                let arm_diverged = diverged || (b.rank_tainted && !symmetric);
                for arm in &b.arms {
                    walk_divergence(display_path, impl_name, &arm.nodes, arm_diverged, raw);
                }
                // Early-exit poison: if rank decides who returns, ranks
                // that exited cannot join any later collective.
                if b.rank_tainted && any_exit && !(b.exhaustive && all_exit) {
                    diverged = true;
                }
            }
            Node::Loop(l) => {
                let body_diverged = diverged || l.rank_tainted;
                walk_divergence(display_path, impl_name, &l.nodes, body_diverged, raw);
            }
        }
    }
}

fn collect_ops<'a>(nodes: &'a [Node], sends: &mut Vec<&'a CommOp>, recvs: &mut Vec<&'a CommOp>) {
    for node in nodes {
        match node {
            Node::Yield(op @ CommOp::Send { .. }) => sends.push(op),
            Node::Yield(op @ CommOp::Recv { .. }) => recvs.push(op),
            Node::Yield(CommOp::Collective { .. }) => {}
            Node::Branch(b) => {
                for arm in &b.arms {
                    collect_ops(&arm.nodes, sends, recvs);
                }
            }
            Node::Loop(l) => collect_ops(&l.nodes, sends, recvs),
        }
    }
}

/// First-yield summary of a node sequence: the yields any rank's *first*
/// `resume` call can produce, whether some path falls through without
/// yielding, and whether some path exits without yielding.
struct FirstYield<'a> {
    ops: Vec<&'a CommOp>,
    may_pass: bool,
    may_exit: bool,
}

fn first_yields(nodes: &[Node]) -> FirstYield<'_> {
    let mut ops = Vec::new();
    let mut may_exit = false;
    for node in nodes {
        match node {
            Node::Yield(op) => {
                ops.push(op);
                return FirstYield {
                    ops,
                    may_pass: false,
                    may_exit,
                };
            }
            Node::Branch(b) => {
                let mut pass = !b.exhaustive;
                for arm in b.arms.iter().filter(|a| a.live_at_first) {
                    let f = first_yields(&arm.nodes);
                    ops.extend(f.ops);
                    may_exit |= f.may_exit;
                    if f.may_pass {
                        if arm.has_exit {
                            // The fall-through contains a `return`/`Done`
                            // the extractor cannot place; treat it as an
                            // exit path (conservative: suppresses, never
                            // invents, a finding).
                            may_exit = true;
                        } else {
                            pass = true;
                        }
                    }
                }
                if !pass {
                    return FirstYield {
                        ops,
                        may_pass: false,
                        may_exit,
                    };
                }
            }
            Node::Loop(l) => {
                // The loop body may run on the first resumption — or not at
                // all (zero iterations), so the sequence continues.
                let f = first_yields(&l.nodes);
                ops.extend(f.ops);
                may_exit |= f.may_exit;
            }
        }
    }
    FirstYield {
        ops,
        may_pass: true,
        may_exit,
    }
}

fn peer_desc(peer: &Peer) -> String {
    match peer {
        Peer::Offset(k) if *k >= 0 => format!("rank+{k}"),
        Peer::Offset(k) => format!("rank{k}"),
        Peer::Literal(v) => format!("rank {v}"),
        Peer::Other(s) => format!("`{s}`"),
    }
}

/// Mirror-matching over rank-offset peers plus the first-yield cycle check.
fn check_unmatched(display_path: &str, sk: &Skeleton, raw: &mut Vec<Finding>) {
    let mut sends = Vec::new();
    let mut recvs = Vec::new();
    collect_ops(&sk.nodes, &mut sends, &mut recvs);

    // (a) Every offset recv needs a send with the opposite offset and the
    // same tag. Skipped entirely for send-less impls (one half of a
    // heterogeneous pairing) and for unverifiable peers.
    if !sends.is_empty() {
        for op in &recvs {
            let CommOp::Recv {
                peer: Peer::Offset(d),
                tag,
                line,
            } = op
            else {
                continue;
            };
            let same_tag: Vec<&&CommOp> = sends
                .iter()
                .filter(|s| matches!(s, CommOp::Send { tag: st, .. } if st == tag))
                .collect();
            if same_tag.is_empty() {
                let send_tags: BTreeSet<&str> = sends
                    .iter()
                    .filter_map(|s| match s {
                        CommOp::Send { tag, .. } => Some(tag.as_str()),
                        _ => None,
                    })
                    .collect();
                raw.push(Finding {
                    file: display_path.to_string(),
                    line: *line,
                    rule: "unmatched-comm",
                    message: format!(
                        "recv with tag `{tag}` in impl `{}` has no send using that tag \
                         (sends use {}); a tag typo leaves the message unclaimed forever",
                        sk.impl_name,
                        send_tags
                            .iter()
                            .map(|t| format!("`{t}`"))
                            .collect::<Vec<_>>()
                            .join(", "),
                    ),
                });
                continue;
            }
            let mirrored = same_tag.iter().any(|s| match s {
                CommOp::Send {
                    peer: Peer::Offset(e),
                    ..
                } => *e == -d,
                // Literal/unverifiable send targets may reach anyone.
                CommOp::Send { .. } => true,
                _ => false,
            });
            if !mirrored {
                let offsets: Vec<String> = same_tag
                    .iter()
                    .filter_map(|s| match s {
                        CommOp::Send { peer, .. } => Some(peer_desc(peer)),
                        _ => None,
                    })
                    .collect();
                raw.push(Finding {
                    file: display_path.to_string(),
                    line: *line,
                    rule: "unmatched-comm",
                    message: format!(
                        "recv from {} (tag `{tag}`) in impl `{}` is never mirrored: \
                         sends with that tag target {}, but delivery needs a send to {} \
                         (reversed ring?)",
                        peer_desc(&Peer::Offset(*d)),
                        sk.impl_name,
                        offsets.join(", "),
                        peer_desc(&Peer::Offset(-d)),
                    ),
                });
            }
        }
    }

    // (b) Recv-before-send cycle: if every first-resume path yields a Recv,
    // no rank can ever produce the message another is waiting for.
    let first = first_yields(&sk.nodes);
    if !first.may_pass && !first.may_exit && !first.ops.is_empty() {
        let all_recv = first.ops.iter().all(|op| matches!(op, CommOp::Recv { .. }));
        if all_recv {
            let line = first
                .ops
                .iter()
                .map(|op| match op {
                    CommOp::Recv { line, .. } => *line,
                    _ => u32::MAX,
                })
                .min()
                .unwrap_or(sk.line);
            raw.push(Finding {
                file: display_path.to_string(),
                line,
                rule: "unmatched-comm",
                message: format!(
                    "every first-resume path of impl `{}` yields `Recv` before any \
                     `Send`; with one program on all ranks nobody can produce the \
                     first message (recv-before-send cycle)",
                    sk.impl_name
                ),
            });
        }
    }
}
