//! Communication-skeleton extraction and protocol-conformance rules.
//!
//! Every [`crate::rules`] rule so far asks a *local* question ("may this
//! identifier appear here?"). Deadlocks are not local: a `DeviceProgram`
//! whose ring exchange flips a peer expression, or whose `Barrier` hides
//! under a rank-dependent branch, compiles fine and only fails at runtime
//! as a `ClusterError::Deadlock`. This module extracts a per-impl
//! **communication skeleton** — a small control-flow tree over the yield
//! points (`Command::{Send,Recv,Barrier,…}` constructions), branches and
//! loops of each `impl … DeviceProgram for …` block — and checks it as two
//! rules:
//!
//! * **`collective-divergence`** — a collective yield reachable under a
//!   branch or loop whose condition is tainted by rank-local data (`rank`,
//!   `is_master`, or a `let` derived from them), so some ranks may never
//!   join the rendezvous. Exhaustive branches whose arms all yield the
//!   same collective trace are exempt (the master/worker `Gather` idiom
//!   diverges in payload, not in protocol). A rank-tainted early exit
//!   poisons the rest of the sequence: ranks that returned cannot join a
//!   later collective.
//! * **`unmatched-comm`** — within a lockstep phase (one program on all
//!   ranks), a `Recv { src, tag }` whose peer normalizes to rank-offset
//!   arithmetic (`(rank + k) % n`) that no reachable `Send` mirrors with
//!   the opposite offset and the same tag — catching reversed rings and
//!   tag typos — plus a first-yield pass: if *every* first-resume path
//!   yields a `Recv`, no rank can ever produce the first message
//!   (recv-before-send cycle).
//!
//! Both rules are deliberately conservative. Peers that do not normalize
//! to `rank ± k (mod n)` with `|k| <= 2` are unverifiable and never
//! flagged; impls with no `Send` at all are assumed to be one half of a
//! heterogeneous pairing and skipped by the mirror check; anything the
//! extractor cannot see (commands built outside the impl, trait-object
//! indirection) yields an empty skeleton, which is always clean. The
//! escape hatch is the standard `// lint:allow(<rule>): <reason>`. The
//! runtime twin of this pass is `comm::waitgraph` — the wait-for graph a
//! real deadlock produces names the same ranks these rules predict
//! (`examples/deadlock_gallery.rs` pins the pairing).

use crate::lexer::{Tok, TokKind};
use crate::rules::Finding;
use crate::scopes;
use std::collections::{BTreeMap, BTreeSet};

/// `Resume` variants that answer a previous yield: a match arm naming one
/// of these (and not `Start`) cannot be taken on the first resumption.
pub(crate) const RESPONSE_VARIANTS: [&str; 8] = [
    "Sent",
    "Received",
    "BarrierDone",
    "RingDone",
    "BroadcastDone",
    "GatherDone",
    "ScatterDone",
    "Advanced",
];

/// Command kinds that park every rank at a rendezvous.
const COLLECTIVE_KINDS: [&str; 5] = ["Barrier", "RingAll2All", "Broadcast", "Gather", "Scatter"];

/// A peer expression, normalized for mirror-matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Peer {
    /// `(rank + k) % n` for `|k| <= 2` (`n`-multiples contribute 0). Only
    /// expressions carrying an explicit `% n` wrap normalize here; an
    /// unwrapped `rank + k` can leave `0..n` at the edge ranks and stays
    /// [`Peer::Other`].
    Offset(i64),
    /// A constant rank (roots, masters).
    Literal(i64),
    /// `n + k` without a wrap: a constant relative to the device count
    /// (`n - 1` is the last rank; `n + 2` is out of range on every
    /// cluster, the shape behind `ClusterError::InvalidPeer`).
    NRelative(i64),
    /// Anything the normalizer cannot verify; never flagged.
    Other(String),
}

impl Peer {
    /// Concretely evaluates the peer for `rank` out of `n`. `Offset` wraps
    /// into the ring and is always in range; `Literal` and `NRelative`
    /// evaluate as written and may land outside `0..n` (the model checker
    /// turns that into an `invalid-peer` violation). `Other` is
    /// unverifiable and evaluates to `None`.
    pub fn eval(&self, rank: usize, n: usize) -> Option<i64> {
        match self {
            Peer::Offset(k) => {
                let n = n as i64;
                Some(((rank as i64 + k) % n + n) % n)
            }
            Peer::Literal(v) => Some(*v),
            Peer::NRelative(k) => Some(n as i64 + k),
            Peer::Other(_) => None,
        }
    }
}

/// One yield point of the skeleton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommOp {
    /// `Command::Send { dst, tag, .. }` construction.
    Send {
        /// Normalized destination.
        peer: Peer,
        /// Tag expression text (after one `let` resolution).
        tag: String,
        /// 1-based source line.
        line: u32,
    },
    /// `Command::Recv { src, tag }` construction.
    Recv {
        /// Normalized source.
        peer: Peer,
        /// Tag expression text (after one `let` resolution).
        tag: String,
        /// 1-based source line.
        line: u32,
    },
    /// A collective construction (`Barrier`, `RingAll2All`, …).
    Collective {
        /// The command kind identifier.
        kind: String,
        /// 1-based source line.
        line: u32,
    },
}

/// One node of the communication skeleton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A yield point.
    Yield(CommOp),
    /// An `if`/`else` chain or `match`.
    Branch(Branch),
    /// A `for`/`while`/`loop` body.
    Loop(LoopNode),
}

/// A branch over arms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Branch {
    /// 1-based line of the branch keyword.
    pub line: u32,
    /// Condition/scrutinee mentions rank-local data.
    pub rank_tainted: bool,
    /// Every control path goes through an arm (`match`, or `if` with a
    /// final `else`).
    pub exhaustive: bool,
    /// The branch dispatches on the `Resume` input (so at the first
    /// resumption exactly one arm — the one matching `Start` — is live).
    pub resume_match: bool,
    /// The arms, in source order.
    pub arms: Vec<Arm>,
}

/// How a branch arm is selected, for concrete per-rank resolution in the
/// model checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArmCond {
    /// A `match` arm: dispatch is by pattern (see [`Arm::variants`]).
    Pattern,
    /// An `if`/`else if` arm; `Some` when the condition resolves to a
    /// concrete rank test, `None` when it is opaque.
    If(Option<RankCond>),
    /// The final `else` arm: taken whenever no earlier arm was.
    Else,
}

/// A branch condition that resolves to a concrete test on the rank — the
/// declared master/worker split the model checker instantiates exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankCond {
    /// True exactly on this rank (`is_master`, `rank == 0`, …).
    IsRank(i64),
    /// True on every rank but this one (`!is_master`, `rank != 0`,
    /// `rank > 0`).
    IsNotRank(i64),
}

impl RankCond {
    /// Whether the condition holds on `rank`.
    pub fn holds(&self, rank: usize) -> bool {
        match self {
            RankCond::IsRank(r) => rank as i64 == *r,
            RankCond::IsNotRank(r) => rank as i64 != *r,
        }
    }
}

/// One branch arm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arm {
    /// This arm can be taken on the very first resumption.
    pub live_at_first: bool,
    /// The arm body mentions `return` or `Done` (it may end the program
    /// or exit `resume` early).
    pub has_exit: bool,
    /// How the arm is selected (`match` pattern, `if` condition, `else`).
    pub cond: ArmCond,
    /// `Start`/response variants named by the pattern or condition; empty
    /// means a wildcard or binding pattern that matches anything.
    pub variants: Vec<String>,
    /// The `match` pattern carries an `if` guard, so matching the variant
    /// does not guarantee the arm is taken.
    pub guarded: bool,
    /// Nested skeleton nodes.
    pub nodes: Vec<Node>,
}

/// A loop body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopNode {
    /// 1-based line of the loop keyword.
    pub line: u32,
    /// The bound/condition mentions rank-local data.
    pub rank_tainted: bool,
    /// Nested skeleton nodes.
    pub nodes: Vec<Node>,
}

/// The communication skeleton of one `DeviceProgram` impl.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Skeleton {
    /// The implementing type's name.
    pub impl_name: String,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
    /// 1-based line of the impl block's closing brace.
    pub end_line: u32,
    /// Top-level nodes in source order.
    pub nodes: Vec<Node>,
}

/// A same-file free helper function whose body contains `Command`
/// constructions: a yield point hidden behind a call. Skeleton extraction
/// inlines these at their call sites (with argument substitution, so peer
/// offsets survive), closing the soundness hole where a reversed recv
/// inside a helper was invisible to the protocol rules. Methods (any `fn`
/// with a `self` receiver, like the `DeviceCtx` command wrappers) are
/// deliberately excluded: only plain `name(args)` calls inline.
struct Helper {
    /// Parameter names in order.
    params: Vec<String>,
    /// Token indices of the body's `{` and matching `}`.
    body: (usize, usize),
}

/// Collects every same-file free `fn` (except `resume` itself) whose body
/// constructs `Command`s, keyed by name.
fn collect_helpers(code: &[&Tok]) -> BTreeMap<String, Helper> {
    let mut out = BTreeMap::new();
    let mut i = 0;
    while i + 1 < code.len() {
        if !code[i].is_ident("fn") || code[i + 1].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let name = code[i + 1].text.clone();
        // Find the parameter list, stopping at a body or item end so a
        // malformed header cannot send us scanning the whole file.
        let mut j = i + 2;
        while j < code.len()
            && !code[j].is_punct('(')
            && !code[j].is_punct('{')
            && !code[j].is_punct(';')
        {
            j += 1;
        }
        if j >= code.len() || !code[j].is_punct('(') {
            i += 1;
            continue;
        }
        let close_paren = scopes::matching(code, j);
        let mut params = Vec::new();
        let mut has_receiver = false;
        let mut k = j + 1;
        while k < close_paren {
            let end = {
                // Split one parameter at the next depth-0 comma.
                let mut depth = 0usize;
                let mut e = k;
                while e < close_paren {
                    let t = code[e];
                    if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
                        depth = depth.saturating_sub(1);
                    } else if depth == 0 && t.is_punct(',') {
                        break;
                    }
                    e += 1;
                }
                e
            };
            let seg = &code[k..end];
            let colon = seg.iter().position(|t| t.is_punct(':'));
            let name_tok = seg[..colon.unwrap_or(seg.len())]
                .iter()
                .find(|t| t.kind == TokKind::Ident && !matches!(t.text.as_str(), "mut" | "ref"));
            if seg.iter().any(|t| t.is_ident("self")) {
                has_receiver = true;
            } else if let Some(t) = name_tok {
                params.push(t.text.clone());
            }
            k = end + 1;
        }
        // The body `{` follows the return type (whose `Step<()>` parens are
        // already balanced); a `;` first means a bodyless declaration.
        let mut b = close_paren + 1;
        while b < code.len() && !code[b].is_punct('{') && !code[b].is_punct(';') {
            b += 1;
        }
        if b >= code.len() || !code[b].is_punct('{') {
            i = close_paren + 1;
            continue;
        }
        let body_close = scopes::matching(code, b);
        let has_commands = (b..body_close.min(code.len())).any(|x| {
            code[x].is_ident("Command")
                && code.get(x + 1).is_some_and(|t| t.is_punct(':'))
                && code.get(x + 2).is_some_and(|t| t.is_punct(':'))
        });
        if has_commands && !has_receiver && name != "resume" {
            out.insert(
                name,
                Helper {
                    params,
                    body: (b, body_close),
                },
            );
        }
        // Continue from inside the header so nested fns are still found.
        i = b + 1;
    }
    out
}

/// Extracts the communication skeleton of every `impl … DeviceProgram …
/// for …` block in a comment-free token slice. Calls to same-file helper
/// functions containing `Command` constructions are inlined with argument
/// substitution (see [`Helper`]).
pub fn extract_skeletons(code: &[&Tok]) -> Vec<Skeleton> {
    let helpers = collect_helpers(code);
    let mut out = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !code[i].is_ident("impl") {
            i += 1;
            continue;
        }
        let impl_line = code[i].line;
        let mut j = i + 1;
        let (mut saw_trait, mut for_at) = (false, None);
        while j < code.len() && !code[j].is_punct('{') && !code[j].is_punct(';') {
            if code[j].is_ident("DeviceProgram") {
                saw_trait = true;
            } else if code[j].is_ident("for") && for_at.is_none() {
                for_at = Some(j);
            }
            j += 1;
        }
        let (Some(for_at), true) = (for_at, saw_trait) else {
            i = j + 1;
            continue;
        };
        if j >= code.len() || !code[j].is_punct('{') {
            i = j + 1;
            continue;
        }
        let impl_name = code[(for_at + 1)..j]
            .iter()
            .find(|t| t.kind == TokKind::Ident)
            .map_or_else(|| "?".to_string(), |t| t.text.clone());
        let close = scopes::matching(code, j);
        let mut parser = Parser {
            code,
            taint: BTreeSet::new(),
            defs: BTreeMap::new(),
            helpers: &helpers,
            inlining: Vec::new(),
        };
        let end_line = code
            .get(close.min(code.len().saturating_sub(1)))
            .map_or(impl_line, |t| t.line);
        out.push(Skeleton {
            impl_name,
            line: impl_line,
            end_line,
            nodes: parser.parse_seq(j + 1, close.min(code.len())),
        });
        i = close + 1;
    }
    out
}

/// True when `text` is intrinsically rank-local.
fn is_rank_marker(text: &str) -> bool {
    text == "rank" || text == "is_master"
}

struct Parser<'a> {
    code: &'a [&'a Tok],
    /// Identifiers carrying rank-local values (markers plus `let` taint).
    taint: BTreeSet<String>,
    /// Single-binding `let` initializers, for peer/tag resolution.
    defs: BTreeMap<String, Vec<String>>,
    /// Same-file command-bearing helpers, inlined at call sites.
    helpers: &'a BTreeMap<String, Helper>,
    /// Helper names currently being inlined (recursion/depth guard).
    inlining: Vec<String>,
}

impl Parser<'_> {
    fn mentions_rank(&self, lo: usize, hi: usize) -> bool {
        self.code[lo..hi.min(self.code.len())].iter().any(|t| {
            t.kind == TokKind::Ident && (is_rank_marker(&t.text) || self.taint.contains(&t.text))
        })
    }

    fn mentions_ident(&self, lo: usize, hi: usize, name: &str) -> bool {
        self.code[lo..hi.min(self.code.len())]
            .iter()
            .any(|t| t.is_ident(name))
    }

    fn mentions_response_variant(&self, lo: usize, hi: usize) -> bool {
        self.code[lo..hi.min(self.code.len())]
            .iter()
            .any(|t| RESPONSE_VARIANTS.iter().any(|v| t.is_ident(v)))
    }

    /// Scans forward to the first occurrence of `c` at delimiter depth 0,
    /// starting at `lo`; returns `hi` if not found.
    fn find_at_depth(&self, lo: usize, hi: usize, c: char) -> usize {
        let mut depth = 0usize;
        for (k, t) in self
            .code
            .iter()
            .enumerate()
            .take(hi.min(self.code.len()))
            .skip(lo)
        {
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && t.is_punct(c) {
                return k;
            }
        }
        hi
    }

    /// Parses a statement/expression sequence into skeleton nodes. Plain
    /// braces are transparent; `let`, branches, loops and `Command`
    /// constructions are structured.
    fn parse_seq(&mut self, lo: usize, hi: usize) -> Vec<Node> {
        let mut nodes = Vec::new();
        let mut i = lo;
        while i < hi.min(self.code.len()) {
            let t = self.code[i];
            if t.is_ident("let") {
                i = self.handle_let(i, hi);
            } else if t.is_ident("if") {
                let (branch, next) = self.parse_if(i, hi);
                nodes.push(Node::Branch(branch));
                i = next;
            } else if t.is_ident("match") {
                let (branch, next) = self.parse_match(i, hi);
                nodes.push(Node::Branch(branch));
                i = next;
            } else if t.is_ident("for") || t.is_ident("while") || t.is_ident("loop") {
                let (lp, next) = self.parse_loop(i, hi);
                nodes.push(Node::Loop(lp));
                i = next;
            } else if t.is_ident("Command")
                && self.code.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && self.code.get(i + 2).is_some_and(|t| t.is_punct(':'))
            {
                let (op, next) = self.parse_command(i, hi);
                if let Some(op) = op {
                    nodes.push(Node::Yield(op));
                }
                i = next;
            } else if t.is_ident("fn")
                && self
                    .code
                    .get(i + 1)
                    .is_some_and(|t| self.helpers.contains_key(&t.text))
            {
                // A helper *definition* nested in the walked range: its body
                // is spliced at call sites, so walking it here would double
                // count its yields.
                let open = self.find_at_depth(i + 2, hi, '{');
                i = if open >= hi {
                    open
                } else {
                    scopes::matching(self.code, open) + 1
                };
            } else if t.kind == TokKind::Ident
                && self.code.get(i + 1).is_some_and(|n| n.is_punct('('))
                && self.helpers.contains_key(&t.text)
                && !self.code.get(i.wrapping_sub(1)).is_some_and(|p| {
                    // Only plain free-function calls inline: not a
                    // definition (`fn name(`), a path call (`T::name(`) or
                    // a method call (`x.name(`).
                    p.is_ident("fn") || p.is_punct(':') || p.is_punct('.')
                })
            {
                let next = self.inline_call(&t.text.clone(), i, &mut nodes);
                i = next;
            } else {
                i += 1;
            }
        }
        nodes
    }

    /// Inlines a call to a command-bearing helper at token `i` (the callee
    /// ident, followed by `(`): parses the helper body with the call's
    /// argument tokens substituted for its parameters, splicing the
    /// resulting nodes in place. Recursive or deeply nested helper chains
    /// fall back to the old opaque-call behavior.
    fn inline_call(&mut self, name: &str, i: usize, nodes: &mut Vec<Node>) -> usize {
        let close = scopes::matching(self.code, i + 1);
        let helper = match self.helpers.get(name) {
            Some(h) if !self.inlining.iter().any(|s| s == name) && self.inlining.len() < 3 => h,
            _ => return i + 1,
        };
        // Split the argument list at depth-0 commas.
        let mut args: Vec<Vec<String>> = Vec::new();
        let mut k = i + 2;
        while k < close {
            let end = self.find_at_depth_all(k, close, ',');
            let texts: Vec<String> = self.code[k..end.min(self.code.len())]
                .iter()
                .map(|t| t.text.clone())
                .collect();
            if !texts.is_empty() {
                args.push(texts);
            }
            k = end + 1;
        }
        let mut child = Parser {
            code: self.code,
            taint: self.taint.clone(),
            defs: self.defs.clone(),
            helpers: self.helpers,
            inlining: {
                let mut s = self.inlining.clone();
                s.push(name.to_string());
                s
            },
        };
        for (param, arg) in helper.params.iter().zip(&args) {
            let tainted = arg
                .iter()
                .any(|t| is_rank_marker(t) || self.taint.contains(t));
            if tainted {
                child.taint.insert(param.clone());
            }
            child.defs.insert(param.clone(), arg.clone());
        }
        nodes.extend(child.parse_seq(helper.body.0 + 1, helper.body.1));
        close + 1
    }

    /// Records a `let` binding's taint and (for single-ident patterns) its
    /// initializer tokens, then resumes the walk *inside* the initializer
    /// so commands and branches there are still seen.
    fn handle_let(&mut self, i: usize, hi: usize) -> usize {
        let mut pat = Vec::new();
        let mut j = i + 1;
        let mut in_type = false;
        while j < hi && !self.code[j].is_punct('=') && !self.code[j].is_punct(';') {
            let t = self.code[j];
            if t.is_punct(':') {
                in_type = true;
            } else if !in_type
                && t.kind == TokKind::Ident
                && !matches!(t.text.as_str(), "mut" | "ref")
            {
                pat.push(t.text.clone());
            }
            j += 1;
        }
        if j >= hi || !self.code[j].is_punct('=') {
            return j + 1;
        }
        // Read ahead over the initializer (to the `;` at depth 0) without
        // consuming it: the caller re-walks it for nested structure.
        let mut depth = 0usize;
        let mut k = j + 1;
        let mut texts = Vec::new();
        let mut tainted = false;
        while k < hi.min(self.code.len()) {
            let t = self.code[k];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && t.is_punct(';') {
                break;
            }
            if t.kind == TokKind::Ident && (is_rank_marker(&t.text) || self.taint.contains(&t.text))
            {
                tainted = true;
            }
            texts.push(t.text.clone());
            k += 1;
        }
        if tainted {
            self.taint.extend(pat.iter().cloned());
        }
        if pat.len() == 1 && !texts.is_empty() {
            self.defs.insert(pat.remove(0), texts);
        }
        j + 1
    }

    /// Resolves a branch condition to a concrete rank test when it is one
    /// of the recognized master/worker forms (`is_master`, `rank == k`,
    /// `rank != k`, `rank > 0`, negations, or a `let` alias of one).
    fn rank_cond(&self, lo: usize, hi: usize) -> Option<RankCond> {
        let mut texts: Vec<String> = self.code[lo..hi.min(self.code.len())]
            .iter()
            .map(|t| t.text.clone())
            .filter(|t| !matches!(t.as_str(), "ctx" | "self" | "." | "(" | ")"))
            .collect();
        if texts.len() == 1 && !is_rank_marker(&texts[0]) {
            if let Some(def) = self.defs.get(&texts[0]) {
                texts = def
                    .iter()
                    .filter(|t| !matches!(t.as_str(), "ctx" | "self" | "." | "(" | ")"))
                    .cloned()
                    .collect();
            }
        }
        let s: Vec<&str> = texts.iter().map(String::as_str).collect();
        let num = |t: &str| t.parse::<i64>().ok();
        match s.as_slice() {
            ["is_master"] => Some(RankCond::IsRank(0)),
            ["!", "is_master"] => Some(RankCond::IsNotRank(0)),
            ["rank", "=", "=", k] | [k, "=", "=", "rank"] => num(k).map(RankCond::IsRank),
            ["rank", "!", "=", k] | [k, "!", "=", "rank"] => num(k).map(RankCond::IsNotRank),
            ["rank", ">", "0"] | ["0", "<", "rank"] => Some(RankCond::IsNotRank(0)),
            _ => None,
        }
    }

    /// `Start`/response variants named in a token range, for resume-arm
    /// dispatch in the model checker.
    fn variants_in(&self, lo: usize, hi: usize) -> Vec<String> {
        let mut out = Vec::new();
        for t in &self.code[lo..hi.min(self.code.len())] {
            if t.kind == TokKind::Ident
                && (t.text == "Start" || RESPONSE_VARIANTS.contains(&t.text.as_str()))
                && !out.contains(&t.text)
            {
                out.push(t.text.clone());
            }
        }
        out
    }

    fn parse_if(&mut self, i: usize, hi: usize) -> (Branch, usize) {
        let line = self.code[i].line;
        let open = self.find_at_depth(i + 1, hi, '{');
        let cond = (i + 1, open);
        let mut branch = Branch {
            line,
            rank_tainted: self.mentions_rank(cond.0, cond.1),
            exhaustive: false,
            resume_match: false,
            arms: Vec::new(),
        };
        if open >= hi {
            return (branch, hi);
        }
        // An arm guarded by a response-variant condition (and not `Start`)
        // cannot be taken on the first resumption.
        let then_live = !self.mentions_response_variant(cond.0, cond.1)
            || self.mentions_ident(cond.0, cond.1, "Start");
        let then_cond = ArmCond::If(self.rank_cond(cond.0, cond.1));
        let then_variants = self.variants_in(cond.0, cond.1);
        let close = scopes::matching(self.code, open);
        branch.arms.push(self.parse_arm(
            open + 1,
            close,
            then_live,
            then_cond,
            then_variants,
            false,
        ));
        let mut next = close + 1;
        if self.code.get(next).is_some_and(|t| t.is_ident("else")) {
            if self.code.get(next + 1).is_some_and(|t| t.is_ident("if")) {
                // Flatten the `else if` chain into one arm list.
                let (rest, after) = self.parse_if(next + 1, hi);
                branch.rank_tainted |= rest.rank_tainted;
                branch.exhaustive = rest.exhaustive;
                branch.arms.extend(rest.arms);
                next = after;
            } else if self.code.get(next + 1).is_some_and(|t| t.is_punct('{')) {
                let eclose = scopes::matching(self.code, next + 1);
                branch.arms.push(self.parse_arm(
                    next + 2,
                    eclose,
                    true,
                    ArmCond::Else,
                    Vec::new(),
                    false,
                ));
                branch.exhaustive = true;
                next = eclose + 1;
            }
        }
        (branch, next)
    }

    fn parse_match(&mut self, i: usize, hi: usize) -> (Branch, usize) {
        let line = self.code[i].line;
        let open = self.find_at_depth(i + 1, hi, '{');
        let scrutinee = (i + 1, open);
        let mut branch = Branch {
            line,
            rank_tainted: self.mentions_rank(scrutinee.0, scrutinee.1),
            // A Rust `match` is exhaustive by construction.
            exhaustive: true,
            resume_match: self.mentions_ident(scrutinee.0, scrutinee.1, "input"),
            arms: Vec::new(),
        };
        if open >= hi {
            return (branch, hi);
        }
        let close = scopes::matching(self.code, open);
        let mut patterns: Vec<(usize, usize)> = Vec::new();
        let mut k = open + 1;
        while k < close.min(self.code.len()) {
            // Pattern: tokens to the `=>` arrow (lexed as `=` `>`) at depth 0.
            let pat_lo = k;
            let mut depth = 0usize;
            while k < close {
                let t = self.code[k];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth = depth.saturating_sub(1);
                } else if depth == 0
                    && t.is_punct('=')
                    && self.code.get(k + 1).is_some_and(|n| n.is_punct('>'))
                {
                    break;
                }
                k += 1;
            }
            if k >= close {
                break;
            }
            let pat = (pat_lo, k);
            k += 2; // past `=>`
            let (body_lo, body_hi, after) = if self.code.get(k).is_some_and(|t| t.is_punct('{')) {
                let bclose = scopes::matching(self.code, k);
                let after = if self.code.get(bclose + 1).is_some_and(|t| t.is_punct(',')) {
                    bclose + 2
                } else {
                    bclose + 1
                };
                (k + 1, bclose, after)
            } else {
                let end = self.find_at_depth_all(k, close, ',');
                (k, end, end + 1)
            };
            branch.rank_tainted |=
                self.mentions_rank(pat.0, pat.1) && self.mentions_ident(pat.0, pat.1, "if");
            if !branch.resume_match && self.mentions_ident(pat.0, pat.1, "Resume") {
                branch.resume_match = true;
            }
            let variants = self.variants_in(pat.0, pat.1);
            let guarded = self.mentions_ident(pat.0, pat.1, "if");
            patterns.push(pat);
            branch.arms.push(self.parse_arm(
                body_lo,
                body_hi,
                true,
                ArmCond::Pattern,
                variants,
                guarded,
            ));
            k = after;
        }
        if branch.resume_match {
            // First-match semantics: the first arm whose pattern can match
            // `Start` (names it, or names no response variant — wildcards
            // and bindings) is the only arm live at the first resumption.
            let mut start_taken = false;
            for (arm, pat) in branch.arms.iter_mut().zip(&patterns) {
                let can_match_start = self.mentions_ident(pat.0, pat.1, "Start")
                    || !self.mentions_response_variant(pat.0, pat.1);
                arm.live_at_first = can_match_start && !start_taken;
                start_taken |= can_match_start;
            }
        }
        (branch, close + 1)
    }

    /// Like [`Self::find_at_depth`] but also depth-tracks braces (for match
    /// arm expressions containing struct literals).
    fn find_at_depth_all(&self, lo: usize, hi: usize, c: char) -> usize {
        let mut depth = 0usize;
        for (k, t) in self
            .code
            .iter()
            .enumerate()
            .take(hi.min(self.code.len()))
            .skip(lo)
        {
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && t.is_punct(c) {
                return k;
            }
        }
        hi
    }

    fn parse_arm(
        &mut self,
        lo: usize,
        hi: usize,
        live_at_first: bool,
        cond: ArmCond,
        variants: Vec<String>,
        guarded: bool,
    ) -> Arm {
        let has_exit = self.code[lo..hi.min(self.code.len())]
            .iter()
            .any(|t| t.is_ident("return") || t.is_ident("Done"));
        Arm {
            live_at_first,
            has_exit,
            cond,
            variants,
            guarded,
            nodes: self.parse_seq(lo, hi),
        }
    }

    fn parse_loop(&mut self, i: usize, hi: usize) -> (LoopNode, usize) {
        let line = self.code[i].line;
        let open = self.find_at_depth(i + 1, hi, '{');
        // `for pat in bound {` / `while cond {` / `loop {`: the taint source
        // is everything between the keyword and the block (for `for`, the
        // binding left of `in` is harmless to include — `rank` there is
        // rank-dependent anyway).
        let rank_tainted = self.mentions_rank(i + 1, open);
        if open >= hi {
            return (
                LoopNode {
                    line,
                    rank_tainted,
                    nodes: Vec::new(),
                },
                hi,
            );
        }
        let close = scopes::matching(self.code, open);
        let nodes = self.parse_seq(open + 1, close);
        (
            LoopNode {
                line,
                rank_tainted,
                nodes,
            },
            close + 1,
        )
    }

    /// Parses a `Command::Kind { … }` construction at `i` (`i` indexes the
    /// `Command` ident). Returns `None` for non-command paths and for
    /// shapes that look like patterns (missing peer field).
    fn parse_command(&mut self, i: usize, hi: usize) -> (Option<CommOp>, usize) {
        let Some(kind_tok) = self.code.get(i + 3) else {
            return (None, i + 3);
        };
        let kind = kind_tok.text.clone();
        let line = kind_tok.line;
        let braced = self.code.get(i + 4).is_some_and(|t| t.is_punct('{'));
        if COLLECTIVE_KINDS.contains(&kind.as_str()) {
            let next = if braced {
                scopes::matching(self.code, i + 4) + 1
            } else {
                i + 4
            };
            return (Some(CommOp::Collective { kind, line }), next);
        }
        if kind != "Send" && kind != "Recv" {
            return (None, i + 4);
        }
        if !braced {
            // A bare `Command::Send` path (e.g. in a `matches!`) is not a
            // construction.
            return (None, i + 4);
        }
        let close = scopes::matching(self.code, i + 4);
        let fields = self.parse_fields(i + 5, close.min(hi.min(self.code.len())));
        let peer_field = if kind == "Send" { "dst" } else { "src" };
        let Some(peer_texts) = fields.get(peer_field) else {
            // No peer field: a `..` rest pattern or a malformed shape.
            return (None, close + 1);
        };
        let peer = self.normalize_peer(peer_texts);
        let tag = self.resolve_tag(fields.get("tag").cloned().unwrap_or_default());
        let op = if kind == "Send" {
            CommOp::Send { peer, tag, line }
        } else {
            CommOp::Recv { peer, tag, line }
        };
        (Some(op), close + 1)
    }

    /// Splits a brace-enclosed field list into `name -> expression tokens`
    /// (shorthand fields map to their own name).
    fn parse_fields(&self, lo: usize, hi: usize) -> BTreeMap<String, Vec<String>> {
        let mut fields = BTreeMap::new();
        let mut k = lo;
        while k < hi {
            let end = self.find_at_depth_all(k, hi, ',');
            let slice = &self.code[k..end.min(self.code.len())];
            if let Some(name_tok) = slice.first().filter(|t| t.kind == TokKind::Ident) {
                let expr: Vec<String> = if slice.get(1).is_some_and(|t| t.is_punct(':'))
                    && !slice.get(2).is_some_and(|t| t.is_punct(':'))
                {
                    slice[2..].iter().map(|t| t.text.clone()).collect()
                } else {
                    vec![name_tok.text.clone()]
                };
                if !expr.is_empty() {
                    fields.insert(name_tok.text.clone(), expr);
                }
            }
            k = end + 1;
        }
        fields
    }

    /// Resolves a single-identifier expression through the `let` map, up to
    /// three hops (`let n = ctx.num_devices(); let right = (rank + 1) % n;`).
    fn resolve_texts(&self, texts: &[String], depth: usize) -> Vec<String> {
        if depth == 0 || texts.len() != 1 {
            return texts.to_vec();
        }
        match self.defs.get(&texts[0]) {
            Some(def) => self.resolve_texts(def, depth - 1),
            None => texts.to_vec(),
        }
    }

    fn resolve_tag(&self, texts: Vec<String>) -> String {
        self.resolve_texts(&texts, 1).join(" ")
    }

    /// Normalizes a peer expression to [`Peer`]. The evaluator understands
    /// `rank`/`ctx.rank()` terms, integer constants, `n`/`num_devices`
    /// terms, and a trailing `% n` wrap; `ctx` and `self` receivers are
    /// transparent. Subtraction distributes over parenthesized groups, so
    /// the subtract-form offsets `(rank + n - k) % n` and grouped variants
    /// like `(rank + n - (2 - 1)) % n` all normalize to `Offset(-k)`.
    /// `Offset` requires the explicit wrap — an unwrapped `rank + k` can
    /// leave `0..n` at the edge ranks, so it stays `Other` — and a net
    /// offset with magnitude above 2, which real neighbor exchanges never
    /// use, also degrades to `Other`.
    fn normalize_peer(&self, texts: &[String]) -> Peer {
        let texts = self.resolve_texts(texts, 3);
        let joined = texts.join(" ");
        // Split a trailing `% n` wrap off the expression body: everything
        // after the *last* `%` must be `n`-ish or transparent.
        let transparent = |t: &str| {
            matches!(
                t,
                "(" | ")" | "." | "ctx" | "self" | "as" | "usize" | "i64" | "u64" | "u32" | "i32"
            )
        };
        let n_ish = |t: &str| t == "n" || t == "num_devices";
        let (body, wrapped, bad_mod) = match texts.iter().rposition(|t| t == "%") {
            None => (&texts[..], false, false),
            Some(pos) => {
                let tail = &texts[pos + 1..];
                let tail_is_n = tail.iter().any(|t| n_ish(t))
                    && tail.iter().all(|t| n_ish(t) || transparent(t));
                if tail_is_n {
                    (&texts[..pos], true, false)
                } else {
                    (&texts[..], false, true)
                }
            }
        };
        // Sign-aware accumulation with a parenthesis stack, so `- (a - b)`
        // contributes `-a + b`.
        let mut sign = 1i64;
        let mut mul = 1i64;
        let mut stack: Vec<i64> = Vec::new();
        let mut rank_terms = 0i64;
        let mut n_terms = 0i64;
        let mut konst = 0i64;
        let mut unknown = bad_mod;
        for t in body {
            match t.as_str() {
                "(" => {
                    stack.push(mul);
                    mul *= sign;
                    sign = 1;
                }
                ")" => mul = stack.pop().unwrap_or(1),
                "+" => sign = 1,
                "-" => sign = -1,
                // An inner `%` (not the trailing wrap) is unsupported.
                "%" => unknown = true,
                "rank" => {
                    rank_terms += sign * mul;
                    sign = 1;
                }
                s if n_ish(s) => {
                    n_terms += sign * mul;
                    sign = 1;
                }
                s if transparent(s) => {}
                s if s.chars().next().is_some_and(|c| c.is_ascii_digit()) => {
                    match s.replace('_', "").parse::<i64>() {
                        Ok(v) => {
                            konst += sign * mul * v;
                            sign = 1;
                        }
                        Err(_) => unknown = true,
                    }
                }
                _ => unknown = true,
            }
        }
        if unknown {
            Peer::Other(joined)
        } else if wrapped {
            // Under `% n`, whole multiples of `n` contribute 0.
            if rank_terms == 1 && konst.abs() <= 2 {
                Peer::Offset(konst)
            } else if rank_terms == 0 && n_terms == 0 {
                Peer::Literal(konst)
            } else {
                Peer::Other(joined)
            }
        } else if rank_terms == 0 && n_terms == 0 {
            Peer::Literal(konst)
        } else if rank_terms == 0 && n_terms == 1 {
            Peer::NRelative(konst)
        } else {
            Peer::Other(joined)
        }
    }
}

// --------------------------------------------------------------- the rules

/// Runs both protocol rules over every `DeviceProgram` impl in `code`,
/// appending raw findings (suppression is the caller's job). Impls whose
/// header line falls in a `#[cfg(test)]` range are skipped, consistent
/// with the other structural rules.
pub fn check(display_path: &str, code: &[&Tok], exempt: &[(u32, u32)], raw: &mut Vec<Finding>) {
    for sk in extract_skeletons(code) {
        if exempt.iter().any(|&(a, b)| sk.line >= a && sk.line <= b) {
            continue;
        }
        check_divergence(display_path, &sk, raw);
        check_unmatched(display_path, &sk, raw);
    }
}

/// The collectives a node sequence yields, rendered as a structural trace
/// string for arm-symmetry comparison.
fn collective_trace(nodes: &[Node]) -> String {
    let mut out = String::new();
    for node in nodes {
        match node {
            Node::Yield(CommOp::Collective { kind, .. }) => {
                out.push_str(kind);
                out.push(';');
            }
            Node::Yield(_) => {}
            Node::Branch(b) => {
                let arms: Vec<String> = b.arms.iter().map(|a| collective_trace(&a.nodes)).collect();
                out.push('(');
                out.push_str(&arms.join("|"));
                out.push(')');
            }
            Node::Loop(l) => {
                out.push_str("loop(");
                out.push_str(&collective_trace(&l.nodes));
                out.push(')');
            }
        }
    }
    out
}

/// Walks the skeleton flagging collective yields reachable under
/// rank-divergent control flow.
fn check_divergence(display_path: &str, sk: &Skeleton, raw: &mut Vec<Finding>) {
    walk_divergence(display_path, &sk.impl_name, &sk.nodes, false, raw);
}

fn walk_divergence(
    display_path: &str,
    impl_name: &str,
    nodes: &[Node],
    diverged: bool,
    raw: &mut Vec<Finding>,
) {
    let mut diverged = diverged;
    for node in nodes {
        match node {
            Node::Yield(CommOp::Collective { kind, line }) if diverged => {
                raw.push(Finding {
                    id: String::new(),
                    file: display_path.to_string(),
                    line: *line,
                    rule: "collective-divergence",
                    message: format!(
                        "`{kind}` yield in impl `{impl_name}` is guarded by rank-dependent \
                         control flow; ranks that skip it never join the rendezvous \
                         and the cluster deadlocks"
                    ),
                });
            }
            Node::Yield(_) => {}
            Node::Branch(b) => {
                let any_exit = b.arms.iter().any(|a| a.has_exit);
                let all_exit = b.arms.iter().all(|a| a.has_exit);
                // Master/worker symmetry: an exhaustive rank-branch whose
                // arms all yield the same collective trace (and none exits)
                // keeps every rank at the same rendezvous — payloads
                // diverge, the protocol does not.
                let symmetric = b.rank_tainted
                    && b.exhaustive
                    && !any_exit
                    && !b.arms.is_empty()
                    && b.arms
                        .windows(2)
                        .all(|w| collective_trace(&w[0].nodes) == collective_trace(&w[1].nodes));
                let arm_diverged = diverged || (b.rank_tainted && !symmetric);
                for arm in &b.arms {
                    walk_divergence(display_path, impl_name, &arm.nodes, arm_diverged, raw);
                }
                // Early-exit poison: if rank decides who returns, ranks
                // that exited cannot join any later collective.
                if b.rank_tainted && any_exit && !(b.exhaustive && all_exit) {
                    diverged = true;
                }
            }
            Node::Loop(l) => {
                let body_diverged = diverged || l.rank_tainted;
                walk_divergence(display_path, impl_name, &l.nodes, body_diverged, raw);
            }
        }
    }
}

fn collect_ops<'a>(nodes: &'a [Node], sends: &mut Vec<&'a CommOp>, recvs: &mut Vec<&'a CommOp>) {
    for node in nodes {
        match node {
            Node::Yield(op @ CommOp::Send { .. }) => sends.push(op),
            Node::Yield(op @ CommOp::Recv { .. }) => recvs.push(op),
            Node::Yield(CommOp::Collective { .. }) => {}
            Node::Branch(b) => {
                for arm in &b.arms {
                    collect_ops(&arm.nodes, sends, recvs);
                }
            }
            Node::Loop(l) => collect_ops(&l.nodes, sends, recvs),
        }
    }
}

/// First-yield summary of a node sequence: the yields any rank's *first*
/// `resume` call can produce, whether some path falls through without
/// yielding, and whether some path exits without yielding.
struct FirstYield<'a> {
    ops: Vec<&'a CommOp>,
    may_pass: bool,
    may_exit: bool,
}

fn first_yields(nodes: &[Node]) -> FirstYield<'_> {
    let mut ops = Vec::new();
    let mut may_exit = false;
    for node in nodes {
        match node {
            Node::Yield(op) => {
                ops.push(op);
                return FirstYield {
                    ops,
                    may_pass: false,
                    may_exit,
                };
            }
            Node::Branch(b) => {
                let mut pass = !b.exhaustive;
                for arm in b.arms.iter().filter(|a| a.live_at_first) {
                    let f = first_yields(&arm.nodes);
                    ops.extend(f.ops);
                    may_exit |= f.may_exit;
                    if f.may_pass {
                        if arm.has_exit {
                            // The fall-through contains a `return`/`Done`
                            // the extractor cannot place; treat it as an
                            // exit path (conservative: suppresses, never
                            // invents, a finding).
                            may_exit = true;
                        } else {
                            pass = true;
                        }
                    }
                }
                if !pass {
                    return FirstYield {
                        ops,
                        may_pass: false,
                        may_exit,
                    };
                }
            }
            Node::Loop(l) => {
                // The loop body may run on the first resumption — or not at
                // all (zero iterations), so the sequence continues.
                let f = first_yields(&l.nodes);
                ops.extend(f.ops);
                may_exit |= f.may_exit;
            }
        }
    }
    FirstYield {
        ops,
        may_pass: true,
        may_exit,
    }
}

fn peer_desc(peer: &Peer) -> String {
    match peer {
        Peer::Offset(k) if *k >= 0 => format!("rank+{k}"),
        Peer::Offset(k) => format!("rank{k}"),
        Peer::Literal(v) => format!("rank {v}"),
        Peer::NRelative(k) if *k >= 0 => format!("rank n+{k}"),
        Peer::NRelative(k) => format!("rank n{k}"),
        Peer::Other(s) => format!("`{s}`"),
    }
}

/// Mirror-matching over rank-offset peers plus the first-yield cycle check.
fn check_unmatched(display_path: &str, sk: &Skeleton, raw: &mut Vec<Finding>) {
    let mut sends = Vec::new();
    let mut recvs = Vec::new();
    collect_ops(&sk.nodes, &mut sends, &mut recvs);

    // (a) Every offset recv needs a send with the opposite offset and the
    // same tag. Skipped entirely for send-less impls (one half of a
    // heterogeneous pairing) and for unverifiable peers.
    if !sends.is_empty() {
        for op in &recvs {
            let CommOp::Recv {
                peer: Peer::Offset(d),
                tag,
                line,
            } = op
            else {
                continue;
            };
            let same_tag: Vec<&&CommOp> = sends
                .iter()
                .filter(|s| matches!(s, CommOp::Send { tag: st, .. } if st == tag))
                .collect();
            if same_tag.is_empty() {
                let send_tags: BTreeSet<&str> = sends
                    .iter()
                    .filter_map(|s| match s {
                        CommOp::Send { tag, .. } => Some(tag.as_str()),
                        _ => None,
                    })
                    .collect();
                raw.push(Finding {
                    id: String::new(),
                    file: display_path.to_string(),
                    line: *line,
                    rule: "unmatched-comm",
                    message: format!(
                        "recv with tag `{tag}` in impl `{}` has no send using that tag \
                         (sends use {}); a tag typo leaves the message unclaimed forever",
                        sk.impl_name,
                        send_tags
                            .iter()
                            .map(|t| format!("`{t}`"))
                            .collect::<Vec<_>>()
                            .join(", "),
                    ),
                });
                continue;
            }
            let mirrored = same_tag.iter().any(|s| match s {
                CommOp::Send {
                    peer: Peer::Offset(e),
                    ..
                } => *e == -d,
                // Literal/unverifiable send targets may reach anyone.
                CommOp::Send { .. } => true,
                _ => false,
            });
            if !mirrored {
                let offsets: Vec<String> = same_tag
                    .iter()
                    .filter_map(|s| match s {
                        CommOp::Send { peer, .. } => Some(peer_desc(peer)),
                        _ => None,
                    })
                    .collect();
                raw.push(Finding {
                    id: String::new(),
                    file: display_path.to_string(),
                    line: *line,
                    rule: "unmatched-comm",
                    message: format!(
                        "recv from {} (tag `{tag}`) in impl `{}` is never mirrored: \
                         sends with that tag target {}, but delivery needs a send to {} \
                         (reversed ring?)",
                        peer_desc(&Peer::Offset(*d)),
                        sk.impl_name,
                        offsets.join(", "),
                        peer_desc(&Peer::Offset(-d)),
                    ),
                });
            }
        }
    }

    // (b) Recv-before-send cycle: if every first-resume path yields a Recv,
    // no rank can ever produce the message another is waiting for.
    let first = first_yields(&sk.nodes);
    if !first.may_pass && !first.may_exit && !first.ops.is_empty() {
        let all_recv = first.ops.iter().all(|op| matches!(op, CommOp::Recv { .. }));
        if all_recv {
            let line = first
                .ops
                .iter()
                .map(|op| match op {
                    CommOp::Recv { line, .. } => *line,
                    _ => u32::MAX,
                })
                .min()
                .unwrap_or(sk.line);
            raw.push(Finding {
                id: String::new(),
                file: display_path.to_string(),
                line,
                rule: "unmatched-comm",
                message: format!(
                    "every first-resume path of impl `{}` yields `Recv` before any \
                     `Send`; with one program on all ranks nobody can produce the \
                     first message (recv-before-send cycle)",
                    sk.impl_name
                ),
            });
        }
    }
}
