//! `adaqp-lint --explain <rule>`: per-rule rationale with a minimal
//! bad/good example pair, sourced verbatim from the fixture files the
//! scanner tests pin — so the explanation can never drift from what the
//! rule actually flags.

/// One rule's documentation: why it exists plus a flagged and a clean
/// example (the `tests/fixtures` pair).
#[derive(Debug, Clone, Copy)]
pub struct RuleDoc {
    /// The rule name as used in findings and `lint:allow`.
    pub name: &'static str,
    /// Why the rule exists — what failure it prevents.
    pub rationale: &'static str,
    /// A minimal flagged example.
    pub bad: &'static str,
    /// The corresponding clean example.
    pub good: &'static str,
}

/// Documentation for every rule, in [`RULE_NAMES`] order.
pub const RULE_DOCS: [RuleDoc; 11] = [
    RuleDoc {
        name: "sim-clock",
        rationale: "All time must flow through the simulated clock (comm::timing). One \
                    stray Instant::now() or SystemTime mixes host wall-clock into the \
                    modeled timings and silently corrupts every reported figure.",
        bad: include_str!("../tests/fixtures/sim_clock_bad.rs"),
        good: include_str!("../tests/fixtures/sim_clock_ok.rs"),
    },
    RuleDoc {
        name: "no-panic",
        rationale: "Library code reports errors through typed Results; .unwrap()/.expect() \
                    and panic!/todo!/unimplemented! abort the whole experiment instead of \
                    letting the caller handle the failure. #[cfg(test)] code is exempt.",
        bad: include_str!("../tests/fixtures/no_panic_bad.rs"),
        good: include_str!("../tests/fixtures/no_panic_ok.rs"),
    },
    RuleDoc {
        name: "det-iter",
        rationale: "Result-producing crates must iterate deterministically. HashMap/HashSet \
                    iteration order varies run to run, which changes partition boundaries, \
                    bit-width assignments, and every downstream number; use BTreeMap/BTreeSet.",
        bad: include_str!("../tests/fixtures/det_iter_bad.rs"),
        good: include_str!("../tests/fixtures/det_iter_ok.rs"),
    },
    RuleDoc {
        name: "lossy-cast",
        rationale: "Narrowing `as` casts in quant kernels truncate silently. Quantization \
                    deliberately narrows, but each site must say so: annotate deliberate \
                    truncation with lint:allow(lossy-cast) and a reason.",
        bad: include_str!("../tests/fixtures/lossy_cast_bad.rs"),
        good: include_str!("../tests/fixtures/lossy_cast_ok.rs"),
    },
    RuleDoc {
        name: "no-stray-print",
        rationale: "Library crates stay silent: stdout/stderr belong to the CLI layer. \
                    println!/eprintln! in a library bypass the typed telemetry/metrics \
                    exporters and garble machine-read output.",
        bad: include_str!("../tests/fixtures/no_stray_print_bad.rs"),
        good: include_str!("../tests/fixtures/no_stray_print_ok.rs"),
    },
    RuleDoc {
        name: "dep-hygiene",
        rationale: "Every crate dependency must route through [workspace.dependencies] \
                    (`name = { workspace = true }`) so the offline shim substitution \
                    stays total — a version or path written in a member manifest escapes it.",
        bad: include_str!("../tests/fixtures/dep_hygiene_bad.toml"),
        good: include_str!("../tests/fixtures/dep_hygiene_ok.toml"),
    },
    RuleDoc {
        name: "par-disjoint",
        rationale: "Closures handed to the deterministic parallel runtime may only index \
                    their output slices with identifiers derived from the chunk-range \
                    parameters; a captured or global index is how chunks come to alias, \
                    which the byte-determinism contract forbids.",
        bad: include_str!("../tests/fixtures/par_disjoint_bad.rs"),
        good: include_str!("../tests/fixtures/par_disjoint_ok.rs"),
    },
    RuleDoc {
        name: "unit-confusion",
        rationale: "Host wall-clock seconds (host_seconds, Instant deltas) and simulated \
                    seconds (sim_seconds) must never meet in arithmetic or assignment: \
                    summing them produces a number that is neither, and it looks plausible.",
        bad: include_str!("../tests/fixtures/unit_confusion_bad.rs"),
        good: include_str!("../tests/fixtures/unit_confusion_ok.rs"),
    },
    RuleDoc {
        name: "no-host-block",
        rationale: "A DeviceProgram advances under a single-threaded event loop: every wait \
                    must be a yielded Command. thread::sleep, channel .recv() or timeout \
                    waits inside resume() park the host thread and stall the whole cluster.",
        bad: include_str!("../tests/fixtures/no_host_block_bad.rs"),
        good: include_str!("../tests/fixtures/no_host_block_ok.rs"),
    },
    RuleDoc {
        name: "collective-divergence",
        rationale: "A Barrier/collective yield guarded by a branch or loop whose condition \
                    is rank-tainted (rank, is_master, or data derived from them) means some \
                    ranks may never join the rendezvous — the cluster deadlocks with part \
                    of the fleet parked at the collective. Exhaustive branches whose arms \
                    all yield the same collective trace (master/worker payload splits) are \
                    exempt; a rank-dependent early return poisons everything after it.",
        bad: include_str!("../tests/fixtures/collective_divergence_bad.rs"),
        good: include_str!("../tests/fixtures/collective_divergence_ok.rs"),
    },
    RuleDoc {
        name: "unmatched-comm",
        rationale: "In a lockstep phase (one program on all ranks), a Recv whose peer \
                    normalizes to rank-offset arithmetic needs a Send with the mirrored \
                    offset and the same tag — `recv from rank-1` pairs with `send to \
                    rank+1`. Reversed rings, tag typos, and programs whose every \
                    first-resume path yields Recv (nobody can send first) all deadlock at \
                    runtime with unclaimed mailbox keys. Peers that are not rank \
                    arithmetic are unverifiable and never flagged.",
        bad: include_str!("../tests/fixtures/unmatched_comm_bad.rs"),
        good: include_str!("../tests/fixtures/unmatched_comm_ok.rs"),
    },
];

/// Looks up the documentation for `rule`, if it names a known rule.
pub fn explain_rule(rule: &str) -> Option<&'static RuleDoc> {
    RULE_DOCS.iter().find(|d| d.name == rule)
}

/// Renders one rule's documentation as the `--explain` output text.
pub fn render(doc: &RuleDoc) -> String {
    format!(
        "rule: {}\n\n{}\n\n--- flagged ---------------------------------------------------\n{}\n--- clean -----------------------------------------------------\n{}",
        doc.name, doc.rationale, doc.bad, doc.good
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RULE_NAMES;

    #[test]
    fn every_rule_has_a_doc_and_every_doc_a_rule() {
        let doc_names: Vec<&str> = RULE_DOCS.iter().map(|d| d.name).collect();
        assert_eq!(doc_names.as_slice(), RULE_NAMES.as_slice());
        for doc in &RULE_DOCS {
            assert!(!doc.rationale.is_empty());
            assert!(!doc.bad.is_empty(), "{} bad example missing", doc.name);
            assert!(!doc.good.is_empty(), "{} good example missing", doc.name);
        }
    }

    #[test]
    fn lookup_finds_known_rules_only() {
        assert!(explain_rule("unmatched-comm").is_some());
        assert!(explain_rule("collective-divergence").is_some());
        assert!(explain_rule("no-such-rule").is_none());
        let out = render(explain_rule("sim-clock").expect("known rule"));
        assert!(out.contains("rule: sim-clock"));
        assert!(out.contains("flagged"));
    }
}
