//! Workspace discovery and the file-set walk.
//!
//! The `--workspace` scan covers `crates/**` (sources and manifests) plus
//! the top-level `tests/` and `examples/` trees. `shims/` is excluded by
//! design: the shims stand in for external crates and sit outside the
//! simulation's invariant boundary (the criterion shim, for instance, *is*
//! a wall-clock harness). `target/` and lint fixture directories are
//! skipped.

use crate::rules::{scan_manifest, scan_rust, FileClass, Finding};
use std::path::{Path, PathBuf};

/// A scan failure (I/O, missing root); distinct from rule findings.
#[derive(Debug)]
pub struct ScanError {
    /// What was being accessed.
    pub path: PathBuf,
    /// The underlying error.
    pub source: std::io::Error,
}

impl std::fmt::Display for ScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path.display(), self.source)
    }
}

impl std::error::Error for ScanError {}

/// Locates the workspace root: `$CARGO_MANIFEST_DIR/../..` when invoked via
/// `cargo run -p analysis`, else the nearest ancestor of the current
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_root() -> Result<PathBuf, ScanError> {
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        if let Some(root) = Path::new(&dir).parent().and_then(Path::parent) {
            if root.join("Cargo.toml").exists() {
                return Ok(root.to_path_buf());
            }
        }
    }
    let cwd = std::env::current_dir().map_err(|source| ScanError {
        path: PathBuf::from("."),
        source,
    })?;
    let mut dir = cwd.as_path();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.exists() {
            let text = std::fs::read_to_string(&manifest).unwrap_or_default();
            if text.contains("[workspace]") {
                return Ok(dir.to_path_buf());
            }
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => {
                return Err(ScanError {
                    path: cwd,
                    source: std::io::Error::new(
                        std::io::ErrorKind::NotFound,
                        "no workspace Cargo.toml in any ancestor directory",
                    ),
                })
            }
        }
    }
}

/// Scans the whole workspace under `root`, returning findings sorted by
/// path/line.
pub fn scan_workspace(root: &Path) -> Result<Vec<Finding>, ScanError> {
    let mut files = Vec::new();
    for top in ["crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    let mut findings = Vec::new();
    for path in files {
        let rel = relative(&path, root);
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name == "Cargo.toml" {
            if rel.starts_with("crates/") {
                findings.extend(scan_manifest(&rel, &read(&path)?));
            }
        } else if let Some(class) = FileClass::classify(&rel) {
            findings.extend(scan_rust(&rel, &rel, &class, &read(&path)?));
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(findings)
}

/// Enumerates the workspace's Rust sources as `(relative path, absolute
/// path)` pairs — the same walk and classification `scan_workspace` uses
/// (fixtures, shims, `target/` excluded), so adaqp-model checks exactly the
/// file set adaqp-lint lints.
pub fn workspace_sources(root: &Path) -> Result<Vec<(String, PathBuf)>, ScanError> {
    let mut files = Vec::new();
    for top in ["crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    let mut out = Vec::new();
    for path in files {
        let rel = relative(&path, root);
        if rel.ends_with(".rs") && FileClass::classify(&rel).is_some() {
            out.push((rel, path));
        }
    }
    out.sort();
    Ok(out)
}

/// Scans one explicitly-named file (scratch/fixture mode): `.toml` files get
/// the manifest rule, `.rs` files get every token rule.
pub fn scan_path(path: &Path) -> Result<Vec<Finding>, ScanError> {
    let display = path.display().to_string();
    let src = read(path)?;
    if display.ends_with(".toml") {
        Ok(scan_manifest(&display, &src))
    } else {
        Ok(scan_rust(&display, &display, &FileClass::Explicit, &src))
    }
}

fn read(path: &Path) -> Result<String, ScanError> {
    std::fs::read_to_string(path).map_err(|source| ScanError {
        path: path.to_path_buf(),
        source,
    })
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), ScanError> {
    let entries = std::fs::read_dir(dir).map_err(|source| ScanError {
        path: dir.to_path_buf(),
        source,
    })?;
    for entry in entries {
        let entry = entry.map_err(|source| ScanError {
            path: dir.to_path_buf(),
            source,
        })?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") || name == "Cargo.toml" {
            out.push(path);
        }
    }
    Ok(())
}

fn relative(path: &Path, root: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
