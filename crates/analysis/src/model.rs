//! Exhaustive small-scope model checking of `DeviceProgram` communication
//! skeletons.
//!
//! The protocol rules in [`crate::protocol`] ask *shape* questions: does a
//! recv have a mirrored send, is a collective guarded by rank. This module
//! goes further and **executes** the extracted [`Skeleton`] symbolically on
//! `n ∈ {2, 3, 4}` ranks, exploring every interleaving of every
//! rank-tainted branch resolution, and proves the program deadlock-free —
//! or produces the shortest counterexample trace.
//!
//! ## Execution model
//!
//! The event scheduler (`comm::event`) drives each device as a resumable
//! state machine: every `resume(ctx, input)` call walks the program source
//! from the top and returns one `Step` — either `Yield(Command)` or
//! `Done`. The model mirrors that re-entry semantics exactly: one resume
//! of rank `r` with pending variant `v` is a walk of the skeleton that
//! dispatches `match input` branches on `v`, resolves recognized
//! master/worker conditions ([`crate::protocol::RankCond`]) concretely for
//! `r`, explores both sides of opaque branches, and stops at the first
//! yield point on each path. In-repo programs keep their cross-resume
//! state in `Resume` payloads and field data that never feeds control
//! flow, so the memoryless walk is exact for them; programs it cannot
//! model (opaque peers, `Command::Advance` indirection) are reported
//! *unverifiable*, never silently proved.
//!
//! ## State space
//!
//! A global state is `(rank states, mailboxes)`:
//!
//! * per rank: `Ready(pending variant)`, `RecvWait{src, tag}`,
//!   `CollWait{kind}`, or `Done` — the same statuses the scheduler keeps;
//! * mailboxes: a map `(dst, src, tag) -> queued count`, capped at
//!   [`ModelOptions::mailbox_cap`] (a send past the cap saturates the
//!   count and taints the proof — see `saturated` in [`Verdict::Proved`]).
//!
//! Transitions: a `Ready` rank resumes (sends deliver eagerly to a
//! matching parked recv — the scheduler's delivery is the only consumer of
//! that key, so the merge is a sound reduction); when **all** ranks are
//! collective-parked on one kind, the rendezvous fires. Exploration is
//! breadth-first with a canonical-state visited set (cycle detection — the
//! rendezvous loops of long-running programs close on themselves), so the
//! first violation found has a minimal transition count.
//!
//! ## Violations
//!
//! * `deadlock` — no enabled transition while some rank is unfinished;
//! * `unclaimed` — every rank finished but a mailbox still holds payloads;
//! * `invalid-peer` — a send/recv peer evaluates outside `0..n` (the
//!   static twin of `ClusterError::InvalidPeer`);
//! * `collective-mismatch` — all ranks parked, but at different
//!   collective kinds (the static twin of `ClusterError::CollectiveMismatch`).
//!
//! A violation renders through the *runtime* diagnostics vocabulary — the
//! [`WaitGraph`] built from the stalled frontier is byte-for-byte the
//! graph `ClusterError::Deadlock` would display for the same stall
//! (`WaitGraph::from_frontier` is shared), so static blame and runtime
//! blame are directly comparable.
//!
//! Suppression uses `// model:allow(<class>): <reason>` placed on the
//! impl (up to three lines above the `impl` keyword, or anywhere inside
//! the block). The namespace is distinct from `lint:allow` on purpose:
//! the lint's stale-allow hygiene must not see model directives, and vice
//! versa. Reason-less, unknown-class and unused directives are reported.

use crate::lexer::{lex, Tok, TokKind};
use crate::protocol::{extract_skeletons, Arm, ArmCond, Branch, CommOp, Node, Peer, Skeleton};
use crate::rules::test_exempt_ranges;
use comm::{BlockedRank, UnclaimedMessage, WaitCause, WaitGraph};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Violation classes the checker can report (and `model:allow` can name).
pub const MODEL_RULES: [&str; 4] = [
    "deadlock",
    "unclaimed",
    "invalid-peer",
    "collective-mismatch",
];

/// Resume variants in dispatch order; `Ready(i)` indexes this table.
const VARIANTS: [&str; 8] = [
    "Start",
    "Sent",
    "Received",
    "BarrierDone",
    "RingDone",
    "BroadcastDone",
    "GatherDone",
    "ScatterDone",
];

const START: usize = 0;
const SENT: usize = 1;
const RECEIVED: usize = 2;

/// Collective kinds: `(skeleton ident, runtime kind name, done variant)`.
/// The kind names are the `Command::kind_name` strings, so static wait
/// graphs carry the same labels as runtime ones.
const COLLECTIVES: [(&str, &str, usize); 5] = [
    ("Barrier", "barrier", 3),
    ("RingAll2All", "ring_all2all", 4),
    ("Broadcast", "broadcast", 5),
    ("Gather", "gather", 6),
    ("Scatter", "scatter", 7),
];

/// Exploration bounds and the rank counts to instantiate.
#[derive(Debug, Clone)]
pub struct ModelOptions {
    /// Rank counts to check (the master/worker split is instantiated at
    /// every `n`: rank 0 is the master).
    pub ns: Vec<usize>,
    /// Visited-state bound per `(program, n)`; exceeding it makes the
    /// verdict unverifiable, never a false proof.
    pub max_states: usize,
    /// Per-key mailbox depth bound; a send past it saturates the count
    /// (the proof is then reported `saturated` — sound for stall-freedom
    /// of every behavior within the bound).
    pub mailbox_cap: u8,
}

impl Default for ModelOptions {
    fn default() -> Self {
        ModelOptions {
            ns: vec![2, 3, 4],
            max_states: 100_000,
            mailbox_cap: 4,
        }
    }
}

/// One step of a counterexample trace.
#[derive(Debug, Clone)]
pub struct TraceStep {
    /// The acting rank; `None` for a whole-cluster rendezvous step.
    pub rank: Option<usize>,
    /// What the step did (`yields Send { dst: 1, tag: 7 }`, …).
    pub desc: String,
    /// Source line of the acted-on yield point (0 for rendezvous steps).
    pub line: u32,
}

/// A violation with its shortest counterexample.
#[derive(Debug, Clone)]
pub struct ViolationReport {
    /// The violation class (one of [`MODEL_RULES`]).
    pub rule: &'static str,
    /// The rank count it was found at.
    pub n: usize,
    /// Blamed source line (lowest blocked rank's yield point).
    pub line: u32,
    /// One-line description.
    pub message: String,
    /// Ordered per-rank trace from the initial state to the violation.
    pub trace: Vec<TraceStep>,
    /// The stalled frontier in runtime vocabulary (empty mailboxes and
    /// blocked set for non-stall violations).
    pub graph: WaitGraph,
    /// States explored before the violation surfaced.
    pub states: usize,
}

/// The per-`n` outcome for one program.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// Exhaustively explored with no violation: a proof certificate.
    Proved {
        /// Distinct canonical states visited.
        states: usize,
        /// Maximum BFS depth (transitions from the initial state).
        depth: usize,
        /// A mailbox hit [`ModelOptions::mailbox_cap`]; the proof covers
        /// every behavior within the bound only.
        saturated: bool,
    },
    /// A violation with its counterexample.
    Violation(Box<ViolationReport>),
    /// The program is outside the model's fragment; never counted clean.
    Unverifiable {
        /// Why (opaque peer, `Advance` indirection, state bound, …).
        reason: String,
    },
}

/// Results for one `DeviceProgram` impl across every checked `n`.
#[derive(Debug, Clone)]
pub struct ProgramReport {
    /// Display path of the containing file.
    pub file: String,
    /// The implementing type's name.
    pub impl_name: String,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
    /// `(n, verdict)` per checked rank count, ascending.
    pub results: Vec<(usize, Verdict)>,
    /// Every violation class is covered by a `model:allow` directive.
    pub suppressed: bool,
}

impl ProgramReport {
    /// Whether any checked `n` produced a violation.
    pub fn has_violation(&self) -> bool {
        self.results
            .iter()
            .any(|(_, v)| matches!(v, Verdict::Violation(_)))
    }

    /// Whether any checked `n` came back unverifiable.
    pub fn has_unverifiable(&self) -> bool {
        self.results
            .iter()
            .any(|(_, v)| matches!(v, Verdict::Unverifiable { .. }))
    }
}

/// A malformed or unused `model:allow` directive.
#[derive(Debug, Clone)]
pub struct AllowProblem {
    /// Display path of the containing file.
    pub file: String,
    /// 1-based line of the directive.
    pub line: u32,
    /// What is wrong with it.
    pub message: String,
}

/// Everything the checker found in one source file.
#[derive(Debug, Clone, Default)]
pub struct FileReport {
    /// One report per non-test `DeviceProgram` impl, in source order.
    pub programs: Vec<ProgramReport>,
    /// Directive hygiene problems (stale, reason-less, unknown class).
    pub problems: Vec<AllowProblem>,
}

/// A `model:allow(<class>): <reason>` directive.
struct ModelAllow {
    rule: String,
    line: u32,
    has_reason: bool,
    used: bool,
}

fn collect_model_allows(toks: &[Tok]) -> Vec<ModelAllow> {
    let mut out = Vec::new();
    for t in toks.iter().filter(|t| t.kind == TokKind::Comment) {
        let mut rest = t.text.as_str();
        while let Some(pos) = rest.find("model:allow(") {
            rest = &rest[pos + "model:allow(".len()..];
            let Some(close) = rest.find(')') else { break };
            let rule = rest[..close].trim().to_string();
            if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_lowercase() || c == '-') {
                rest = &rest[close + 1..];
                continue;
            }
            let after = rest[close + 1..].trim_start();
            let has_reason = after
                .strip_prefix(':')
                .is_some_and(|r| !r.trim().is_empty());
            out.push(ModelAllow {
                rule,
                line: t.line,
                has_reason,
                used: false,
            });
            rest = &rest[close + 1..];
        }
    }
    out
}

// ------------------------------------------------------------ compilation

/// One concretely instantiated yield point.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum OpKind {
    /// Evaluated destination (possibly out of `0..n`) and interned tag.
    Send { dst: i64, tag: u64 },
    /// Evaluated source (possibly out of `0..n`) and interned tag.
    Recv { src: i64, tag: u64 },
    /// Index into [`COLLECTIVES`].
    Collective(usize),
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct OpInst {
    kind: OpKind,
    line: u32,
}

impl OpInst {
    fn desc(&self) -> String {
        match &self.kind {
            OpKind::Send { dst, tag } => format!("yields Send {{ dst: {dst}, tag: {tag} }}"),
            OpKind::Recv { src, tag } => format!("yields Recv {{ src: {src}, tag: {tag} }}"),
            OpKind::Collective(k) => format!("yields {}", COLLECTIVES[*k].0),
        }
    }
}

/// The outcomes one `resume(rank, variant)` call can produce.
struct ResumePaths {
    yields: Vec<OpInst>,
    done: bool,
}

/// A skeleton compiled for model checking: tags interned to `u64`.
struct ProgramModel<'a> {
    sk: &'a Skeleton,
    tags: BTreeMap<String, u64>,
}

/// Symbolic ids for non-numeric tag expressions start here; distinct
/// expressions get distinct ids (sound for equality-based matching: the
/// checker never claims two different expressions collide or differ at
/// runtime — it checks self-consistency of each).
const SYMBOLIC_TAG_BASE: u64 = 1 << 40;

impl<'a> ProgramModel<'a> {
    /// Compiles `sk`, or explains why it is outside the model fragment.
    fn compile(sk: &'a Skeleton) -> Result<Self, String> {
        let mut symbolic = BTreeSet::new();
        scan_fragment(&sk.nodes, &mut symbolic)?;
        let tags = symbolic
            .into_iter()
            .enumerate()
            .map(|(i, t)| (t, SYMBOLIC_TAG_BASE + i as u64))
            .collect();
        Ok(ProgramModel { sk, tags })
    }

    fn tag_id(&self, tag: &str) -> u64 {
        match parse_tag(tag) {
            Some(v) => v,
            None => self.tags.get(tag).copied().unwrap_or(SYMBOLIC_TAG_BASE),
        }
    }

    fn instantiate(&self, op: &CommOp, rank: usize, n: usize) -> Option<OpInst> {
        match op {
            CommOp::Send { peer, tag, line } => Some(OpInst {
                kind: OpKind::Send {
                    dst: peer.eval(rank, n)?,
                    tag: self.tag_id(tag),
                },
                line: *line,
            }),
            CommOp::Recv { peer, tag, line } => Some(OpInst {
                kind: OpKind::Recv {
                    src: peer.eval(rank, n)?,
                    tag: self.tag_id(tag),
                },
                line: *line,
            }),
            CommOp::Collective { kind, line } => {
                let idx = COLLECTIVES.iter().position(|(k, _, _)| k == kind)?;
                Some(OpInst {
                    kind: OpKind::Collective(idx),
                    line: *line,
                })
            }
        }
    }

    /// All outcomes of resuming `rank` (of `n`) with pending `variant`.
    fn resume(&self, rank: usize, n: usize, variant: usize) -> ResumePaths {
        let mut out = ResumePaths {
            yields: Vec::new(),
            done: false,
        };
        let passes = self.walk(&self.sk.nodes, rank, n, variant, &mut out);
        if passes {
            // Fell off the end of `resume` without yielding: Done.
            out.done = true;
        }
        // De-duplicate outcomes from overlapping over-approximated paths.
        out.yields.sort();
        out.yields.dedup();
        if out.yields.is_empty() && !out.done {
            // Nothing visible on any path (pathological shapes only):
            // assume the rank finishes rather than inventing a stall.
            out.done = true;
        }
        out
    }

    /// Walks a node sequence; returns whether some path falls through
    /// without yielding or exiting. Yields and exits accumulate in `out`.
    fn walk(
        &self,
        nodes: &[Node],
        rank: usize,
        n: usize,
        variant: usize,
        out: &mut ResumePaths,
    ) -> bool {
        let mut passing = true;
        for node in nodes {
            if !passing {
                break;
            }
            match node {
                Node::Yield(op) => {
                    if let Some(inst) = self.instantiate(op, rank, n) {
                        out.yields.push(inst);
                    }
                    passing = false;
                }
                Node::Loop(l) => {
                    // The body may run (its first yield ends this resume)
                    // or be skipped / complete — the zero-iteration path
                    // always continues past the loop.
                    let _ = self.walk(&l.nodes, rank, n, variant, out);
                }
                Node::Branch(b) => {
                    passing = self.walk_branch(b, rank, n, variant, out);
                }
            }
        }
        passing
    }

    /// Walks a branch; returns whether some path continues after it.
    fn walk_branch(
        &self,
        b: &Branch,
        rank: usize,
        n: usize,
        variant: usize,
        out: &mut ResumePaths,
    ) -> bool {
        let mut passes = false;
        let mut taken_definitely = false;
        if b.resume_match {
            // First-match dispatch on the pending variant: an unguarded
            // arm naming it (or a wildcard) takes control; a guarded arm
            // may or may not.
            for arm in &b.arms {
                let could =
                    arm.variants.is_empty() || arm.variants.iter().any(|v| v == VARIANTS[variant]);
                if !could {
                    continue;
                }
                passes |= self.walk_arm(arm, rank, n, variant, out);
                if !arm.guarded {
                    taken_definitely = true;
                    break;
                }
            }
        } else {
            for arm in &b.arms {
                // An `if matches!(input, …)` arm is false outright when
                // the pending variant is not among the named ones.
                if matches!(arm.cond, ArmCond::If(_))
                    && !arm.variants.is_empty()
                    && !arm.variants.iter().any(|v| v == VARIANTS[variant])
                {
                    continue;
                }
                match &arm.cond {
                    ArmCond::If(Some(rc)) => {
                        if rc.holds(rank) {
                            passes |= self.walk_arm(arm, rank, n, variant, out);
                            taken_definitely = true;
                            break;
                        }
                        // Condition false on this rank: skip the arm.
                    }
                    ArmCond::Else => {
                        passes |= self.walk_arm(arm, rank, n, variant, out);
                        taken_definitely = true;
                        break;
                    }
                    // Opaque `if` or data-match arm: explore both taking
                    // and skipping it.
                    ArmCond::If(None) | ArmCond::Pattern => {
                        passes |= self.walk_arm(arm, rank, n, variant, out);
                    }
                }
            }
        }
        // The branch can be fallen past when no arm deterministically took
        // control and the chain is not exhaustive (or the dispatch was
        // over-approximated).
        passes || (!taken_definitely && !b.exhaustive)
    }

    /// Walks one arm body; returns whether a fell-through path continues
    /// after the enclosing branch (an arm ending in `return`/`Done`
    /// finishes the program instead).
    fn walk_arm(
        &self,
        arm: &Arm,
        rank: usize,
        n: usize,
        variant: usize,
        out: &mut ResumePaths,
    ) -> bool {
        let sub_passes = self.walk(&arm.nodes, rank, n, variant, out);
        if sub_passes && arm.has_exit {
            out.done = true;
            return false;
        }
        sub_passes
    }
}

fn parse_tag(tag: &str) -> Option<u64> {
    tag.replace([' ', '_'], "").parse::<u64>().ok()
}

/// Rejects skeleton shapes outside the model fragment, collecting symbolic
/// (non-numeric) tag expressions along the way.
fn scan_fragment(nodes: &[Node], symbolic: &mut BTreeSet<String>) -> Result<(), String> {
    for node in nodes {
        match node {
            Node::Yield(op) => {
                let (peer, tag) = match op {
                    CommOp::Send { peer, tag, .. } | CommOp::Recv { peer, tag, .. } => {
                        (Some(peer), Some(tag))
                    }
                    CommOp::Collective { .. } => (None, None),
                };
                if let Some(Peer::Other(text)) = peer {
                    return Err(format!("peer expression `{text}` is not rank-affine"));
                }
                if let Some(tag) = tag {
                    if parse_tag(tag).is_none() {
                        symbolic.insert(tag.clone());
                    }
                }
            }
            Node::Branch(b) => {
                for arm in &b.arms {
                    if arm.variants.iter().any(|v| v == "Advanced") {
                        return Err(
                            "dispatches on Resume::Advanced (Command::Advance is not modeled)"
                                .to_string(),
                        );
                    }
                    scan_fragment(&arm.nodes, symbolic)?;
                }
            }
            Node::Loop(l) => scan_fragment(&l.nodes, symbolic)?,
        }
    }
    Ok(())
}

// ------------------------------------------------------------ exploration

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum RankState {
    Ready(usize),
    RecvWait { src: usize, tag: u64, line: u32 },
    CollWait { kind: usize, line: u32 },
    Done,
}

/// Mailboxes: `(dst, src, tag) -> (queued count, first send's line)`.
type Mail = BTreeMap<(usize, usize, u64), (u8, u32)>;

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct State {
    ranks: Vec<RankState>,
    mail: Mail,
}

#[derive(Debug, Clone)]
struct EdgeInfo {
    rank: Option<usize>,
    desc: String,
    line: u32,
}

struct Explorer<'a> {
    model: &'a ProgramModel<'a>,
    n: usize,
    opts: &'a ModelOptions,
    states: Vec<State>,
    index: BTreeMap<State, usize>,
    parent: Vec<Option<(usize, EdgeInfo)>>,
    depth: Vec<usize>,
    saturated: bool,
}

impl<'a> Explorer<'a> {
    fn run(model: &'a ProgramModel<'a>, n: usize, opts: &'a ModelOptions) -> Verdict {
        let mut ex = Explorer {
            model,
            n,
            opts,
            states: Vec::new(),
            index: BTreeMap::new(),
            parent: Vec::new(),
            depth: Vec::new(),
            saturated: false,
        };
        let init = State {
            ranks: vec![RankState::Ready(START); n],
            mail: Mail::new(),
        };
        ex.intern(init, None);
        let mut queue: VecDeque<usize> = VecDeque::new();
        queue.push_back(0);
        let mut max_depth = 0usize;
        while let Some(si) = queue.pop_front() {
            if self_check_len(&ex.states) > ex.opts.max_states {
                return Verdict::Unverifiable {
                    reason: format!(
                        "state space exceeds the {}-state bound at n = {n}",
                        ex.opts.max_states
                    ),
                };
            }
            max_depth = max_depth.max(ex.depth[si]);
            if let Some(v) = ex.expand(si, &mut queue) {
                return Verdict::Violation(Box::new(v));
            }
        }
        Verdict::Proved {
            states: ex.states.len(),
            depth: max_depth,
            saturated: ex.saturated,
        }
    }

    fn intern(&mut self, s: State, from: Option<(usize, EdgeInfo)>) -> Option<usize> {
        if let Some(&existing) = self.index.get(&s) {
            let _ = existing;
            return None;
        }
        let id = self.states.len();
        self.index.insert(s.clone(), id);
        self.states.push(s);
        self.depth
            .push(from.as_ref().map_or(0, |(p, _)| self.depth[*p] + 1));
        self.parent.push(from);
        Some(id)
    }

    /// Expands one state; returns a violation if the state itself (or an
    /// edge out of it) is one.
    fn expand(&mut self, si: usize, queue: &mut VecDeque<usize>) -> Option<ViolationReport> {
        let state = self.states[si].clone();
        let all_done = state.ranks.iter().all(|r| matches!(r, RankState::Done));
        if all_done {
            if state.mail.is_empty() {
                return None; // clean terminal state
            }
            return Some(self.unclaimed_violation(si, &state));
        }
        let mut enabled = false;
        // Rendezvous: every rank parked at a collective.
        let parked: Vec<(usize, usize, u32)> = state
            .ranks
            .iter()
            .enumerate()
            .filter_map(|(r, s)| match s {
                RankState::CollWait { kind, line } => Some((r, *kind, *line)),
                _ => None,
            })
            .collect();
        if parked.len() == self.n {
            let kind0 = parked[0].1;
            if parked.iter().all(|&(_, k, _)| k == kind0) {
                let mut next = state.clone();
                for r in &mut next.ranks {
                    *r = RankState::Ready(COLLECTIVES[kind0].2);
                }
                let edge = EdgeInfo {
                    rank: None,
                    desc: format!("`{}` rendezvous completes", COLLECTIVES[kind0].1),
                    line: 0,
                };
                if let Some(id) = self.intern(next, Some((si, edge))) {
                    queue.push_back(id);
                }
                enabled = true;
            } else {
                return Some(self.mismatch_violation(si, &parked));
            }
        }
        // Ready ranks resume.
        for (r, rs) in state.ranks.iter().enumerate() {
            let RankState::Ready(variant) = rs else {
                continue;
            };
            let paths = self.model.resume(r, self.n, *variant);
            for op in &paths.yields {
                match self.apply_yield(&state, r, op) {
                    Ok((next, edge)) => {
                        if let Some(id) = self.intern(next, Some((si, edge))) {
                            queue.push_back(id);
                        }
                        enabled = true;
                    }
                    Err(v) => return Some(self.op_violation(si, r, op, v)),
                }
            }
            if paths.done {
                let mut next = state.clone();
                next.ranks[r] = RankState::Done;
                let edge = EdgeInfo {
                    rank: Some(r),
                    desc: "returns Done".to_string(),
                    line: 0,
                };
                if let Some(id) = self.intern(next, Some((si, edge))) {
                    queue.push_back(id);
                }
                enabled = true;
            }
        }
        if !enabled {
            return Some(self.deadlock_violation(si, &state));
        }
        None
    }

    /// Applies one yield; `Err` carries the invalid-peer op name.
    fn apply_yield(
        &mut self,
        state: &State,
        r: usize,
        op: &OpInst,
    ) -> Result<(State, EdgeInfo), &'static str> {
        let mut next = state.clone();
        let edge = EdgeInfo {
            rank: Some(r),
            desc: op.desc(),
            line: op.line,
        };
        match &op.kind {
            OpKind::Send { dst, tag } => {
                if *dst < 0 || *dst >= self.n as i64 {
                    return Err("send");
                }
                let dst = *dst as usize;
                let woken = matches!(
                    &next.ranks[dst],
                    RankState::RecvWait { src, tag: want, .. } if *src == r && want == tag
                );
                if woken {
                    next.ranks[dst] = RankState::Ready(RECEIVED);
                } else {
                    let entry = next.mail.entry((dst, r, *tag)).or_insert((0, op.line));
                    if entry.0 >= self.opts.mailbox_cap {
                        self.saturated = true;
                    } else {
                        entry.0 += 1;
                    }
                }
                next.ranks[r] = RankState::Ready(SENT);
            }
            OpKind::Recv { src, tag } => {
                if *src < 0 || *src >= self.n as i64 {
                    return Err("recv");
                }
                let src = *src as usize;
                let key = (r, src, *tag);
                if let Some(entry) = next.mail.get_mut(&key) {
                    entry.0 -= 1;
                    if entry.0 == 0 {
                        next.mail.remove(&key);
                    }
                    next.ranks[r] = RankState::Ready(RECEIVED);
                } else {
                    next.ranks[r] = RankState::RecvWait {
                        src,
                        tag: *tag,
                        line: op.line,
                    };
                }
            }
            OpKind::Collective(kind) => {
                next.ranks[r] = RankState::CollWait {
                    kind: *kind,
                    line: op.line,
                };
            }
        }
        Ok((next, edge))
    }

    // ----------------------------------------------------- violation forms

    fn trace_to(&self, mut si: usize) -> Vec<TraceStep> {
        let mut steps = Vec::new();
        while let Some((p, e)) = &self.parent[si] {
            steps.push(TraceStep {
                rank: e.rank,
                desc: e.desc.clone(),
                line: e.line,
            });
            si = *p;
        }
        steps.reverse();
        steps
    }

    fn wait_graph(&self, state: &State) -> WaitGraph {
        let mut blocked = Vec::new();
        let mut finished = Vec::new();
        for (rank, rs) in state.ranks.iter().enumerate() {
            match rs {
                RankState::RecvWait { src, tag, .. } => blocked.push(BlockedRank {
                    rank,
                    cause: WaitCause::Recv {
                        src: *src,
                        tag: *tag,
                    },
                    clock: 0.0,
                }),
                RankState::CollWait { kind, .. } => blocked.push(BlockedRank {
                    rank,
                    cause: WaitCause::Collective {
                        kind: COLLECTIVES[*kind].1,
                    },
                    clock: 0.0,
                }),
                RankState::Done => finished.push(rank),
                RankState::Ready(_) => {}
            }
        }
        let unclaimed = state
            .mail
            .iter()
            .map(|(&(dst, src, tag), &(count, _))| UnclaimedMessage {
                dst,
                src,
                tag,
                queued: count as usize,
            })
            .collect();
        WaitGraph::from_frontier(self.n, blocked, finished, unclaimed)
    }

    fn deadlock_violation(&self, si: usize, state: &State) -> ViolationReport {
        let graph = self.wait_graph(state);
        let line = state
            .ranks
            .iter()
            .filter_map(|rs| match rs {
                RankState::RecvWait { line, .. } | RankState::CollWait { line, .. } => Some(*line),
                _ => None,
            })
            .next()
            .unwrap_or(0);
        ViolationReport {
            rule: "deadlock",
            n: self.n,
            line,
            message: format!("deadlock at n = {}: {}", self.n, graph.summary()),
            trace: self.trace_to(si),
            graph,
            states: self.states.len(),
        }
    }

    fn unclaimed_violation(&self, si: usize, state: &State) -> ViolationReport {
        let graph = self.wait_graph(state);
        let line = state
            .mail
            .values()
            .map(|&(_, line)| line)
            .min()
            .unwrap_or(0);
        ViolationReport {
            rule: "unclaimed",
            n: self.n,
            line,
            message: format!(
                "all ranks finished at n = {} with undelivered messages: {}",
                self.n,
                graph.summary()
            ),
            trace: self.trace_to(si),
            graph,
            states: self.states.len(),
        }
    }

    fn mismatch_violation(&self, si: usize, parked: &[(usize, usize, u32)]) -> ViolationReport {
        let graph = self.wait_graph(&self.states[si]);
        let (r0, k0, line) = parked[0];
        let other = parked
            .iter()
            .find(|&&(_, k, _)| k != k0)
            .copied()
            .unwrap_or(parked[0]);
        ViolationReport {
            rule: "collective-mismatch",
            n: self.n,
            line,
            message: format!(
                "collective mismatch at n = {}: rank {} entered `{}` while rank {} entered `{}`",
                self.n, r0, COLLECTIVES[k0].1, other.0, COLLECTIVES[other.1].1
            ),
            trace: self.trace_to(si),
            graph,
            states: self.states.len(),
        }
    }

    fn op_violation(
        &self,
        si: usize,
        rank: usize,
        op: &OpInst,
        which: &'static str,
    ) -> ViolationReport {
        let peer = match &op.kind {
            OpKind::Send { dst, .. } => *dst,
            OpKind::Recv { src, .. } => *src,
            OpKind::Collective(_) => 0,
        };
        let mut trace = self.trace_to(si);
        trace.push(TraceStep {
            rank: Some(rank),
            desc: op.desc(),
            line: op.line,
        });
        ViolationReport {
            rule: "invalid-peer",
            n: self.n,
            line: op.line,
            // Mirrors the `ClusterError::InvalidPeer` display.
            message: format!(
                "device {rank}: {which} peer {peer} out of range (n = {})",
                self.n
            ),
            trace,
            graph: self.wait_graph(&self.states[si]),
            states: self.states.len(),
        }
    }
}

/// `Vec::len` spelled as a free fn so the bound check reads as one unit.
fn self_check_len(states: &[State]) -> usize {
    states.len()
}

// ------------------------------------------------------------- file check

/// Model-checks every non-`#[cfg(test)]` `DeviceProgram` impl in `src`.
pub fn check_source(display_path: &str, src: &str, opts: &ModelOptions) -> FileReport {
    let toks = lex(src);
    let mut allows = collect_model_allows(&toks);
    let code: Vec<&Tok> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
    let exempt = test_exempt_ranges(&code);
    let skeletons = extract_skeletons(&code);
    let mut programs = Vec::new();
    for sk in &skeletons {
        if exempt.iter().any(|&(a, b)| sk.line >= a && sk.line <= b) {
            continue;
        }
        let mentions_advance = code
            .iter()
            .any(|t| t.line >= sk.line && t.line <= sk.end_line && t.is_ident("Advance"));
        let results: Vec<(usize, Verdict)> = match ProgramModel::compile(sk) {
            Err(reason) => opts
                .ns
                .iter()
                .map(|&n| {
                    (
                        n,
                        Verdict::Unverifiable {
                            reason: reason.clone(),
                        },
                    )
                })
                .collect(),
            Ok(_) if mentions_advance => opts
                .ns
                .iter()
                .map(|&n| {
                    (
                        n,
                        Verdict::Unverifiable {
                            reason: "yields Command::Advance (not modeled)".to_string(),
                        },
                    )
                })
                .collect(),
            Ok(model) => opts
                .ns
                .iter()
                .map(|&n| (n, Explorer::run(&model, n, opts)))
                .collect(),
        };
        // A directive suppresses a program when it sits on the impl (up to
        // three lines above the `impl` keyword) or anywhere inside it.
        let violation_rules: BTreeSet<&'static str> = results
            .iter()
            .filter_map(|(_, v)| match v {
                Verdict::Violation(rep) => Some(rep.rule),
                _ => None,
            })
            .collect();
        let mut suppressed = !violation_rules.is_empty();
        for rule in &violation_rules {
            let mut covered = false;
            for a in &mut allows {
                let attached = a.line + 3 >= sk.line && a.line <= sk.end_line;
                if attached && a.rule == *rule {
                    a.used = true;
                    covered = true;
                }
            }
            suppressed &= covered;
        }
        programs.push(ProgramReport {
            file: display_path.to_string(),
            impl_name: sk.impl_name.clone(),
            line: sk.line,
            results,
            suppressed,
        });
    }
    let mut problems = Vec::new();
    for a in &allows {
        if !MODEL_RULES.contains(&a.rule.as_str()) {
            problems.push(AllowProblem {
                file: display_path.to_string(),
                line: a.line,
                message: format!(
                    "`model:allow({})` names an unknown class (known: {})",
                    a.rule,
                    MODEL_RULES.join(", ")
                ),
            });
        } else if !a.has_reason {
            problems.push(AllowProblem {
                file: display_path.to_string(),
                line: a.line,
                message: format!(
                    "`model:allow({})` has no reason; write `model:allow({}): <why>`",
                    a.rule, a.rule
                ),
            });
        } else if !a.used {
            problems.push(AllowProblem {
                file: display_path.to_string(),
                line: a.line,
                message: format!(
                    "stale `model:allow({})`: no {} violation here — remove the directive",
                    a.rule, a.rule
                ),
            });
        }
    }
    FileReport { programs, problems }
}

// -------------------------------------------------------------- rendering

/// Renders one program's verdicts as human-readable text (one block).
pub fn render_program(report: &ProgramReport) -> String {
    let mut out = format!(
        "{}:{} {}{}\n",
        report.file,
        report.line,
        report.impl_name,
        if report.suppressed {
            "  [suppressed by model:allow]"
        } else {
            ""
        }
    );
    for (n, v) in &report.results {
        match v {
            Verdict::Proved {
                states,
                depth,
                saturated,
            } => {
                out.push_str(&format!(
                    "  n = {n}: proved deadlock-free ({states} states, depth {depth}{})\n",
                    if *saturated {
                        ", mailbox cap reached — bounded proof"
                    } else {
                        ""
                    }
                ));
            }
            Verdict::Unverifiable { reason } => {
                out.push_str(&format!("  n = {n}: unverifiable — {reason}\n"));
            }
            Verdict::Violation(rep) => {
                out.push_str(&format!(
                    "  n = {n}: {} (line {}) — {}\n",
                    rep.rule.to_uppercase(),
                    rep.line,
                    rep.message
                ));
                out.push_str(&format!(
                    "    shortest counterexample ({} steps):\n",
                    rep.trace.len()
                ));
                for (i, step) in rep.trace.iter().enumerate() {
                    let who = match step.rank {
                        Some(r) => format!("rank {r}"),
                        None => "all ranks".to_string(),
                    };
                    let at = if step.line > 0 {
                        format!(" (line {})", step.line)
                    } else {
                        String::new()
                    };
                    out.push_str(&format!("    {:>3}. {who}: {}{at}\n", i + 1, step.desc));
                }
            }
        }
    }
    out
}

fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders every program's verdicts as the committed certificate JSON.
///
/// Layout is regress-friendly (`crates/obs` flatten semantics): the gating
/// leaves are numeric (`proved`/`violation`/`unverifiable`/`saturated` per
/// `n`, `suppressed` per program, and the `summary` counts); state counts
/// and depths ride along under `_`-prefixed keys, which the regression
/// differ skips, so proof sizes may drift without failing the gate.
pub fn certificates_json(reports: &[ProgramReport], opts: &ModelOptions) -> String {
    let mut keyed: BTreeMap<String, &ProgramReport> = BTreeMap::new();
    for r in reports {
        let mut key = format!("{}::{}", r.file, r.impl_name);
        let mut suffix = 2usize;
        while keyed.contains_key(&key) {
            key = format!("{}::{}#{}", r.file, r.impl_name, suffix);
            suffix += 1;
        }
        keyed.insert(key, r);
    }
    let ns: Vec<String> = opts.ns.iter().map(ToString::to_string).collect();
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"_meta\": {{\"tool\": \"adaqp-model\", \"ns\": [{}], \"mailbox_cap\": {}}},\n",
        ns.join(", "),
        opts.mailbox_cap
    ));
    out.push_str("  \"programs\": {\n");
    let mut program_lines = Vec::new();
    let (mut proved_all, mut violating, mut suppressed_count, mut unverifiable) = (0, 0, 0, 0);
    for (key, r) in &keyed {
        let mut fields = vec![format!("\"suppressed\": {}", u8::from(r.suppressed))];
        let mut notes = Vec::new();
        for (n, v) in &r.results {
            let (p, viol, unv, sat, states, depth) = match v {
                Verdict::Proved {
                    states,
                    depth,
                    saturated,
                } => (1, 0, 0, u8::from(*saturated), *states, *depth),
                Verdict::Violation(rep) => {
                    notes.push(format!("n={n}: {} at line {}", rep.rule, rep.line));
                    (0, 1, 0, 0, rep.states, rep.trace.len())
                }
                Verdict::Unverifiable { reason } => {
                    notes.push(format!("n={n}: unverifiable: {reason}"));
                    (0, 0, 1, 0, 0, 0)
                }
            };
            fields.push(format!(
                "\"n{n}\": {{\"proved\": {p}, \"violation\": {viol}, \"unverifiable\": {unv}, \
                 \"saturated\": {sat}, \"_states\": {states}, \"_depth\": {depth}}}"
            ));
        }
        if !notes.is_empty() {
            fields.push(format!(
                "\"_notes\": \"{}\"",
                json_escape(&notes.join("; "))
            ));
        }
        if r.has_violation() {
            violating += 1;
            if r.suppressed {
                suppressed_count += 1;
            }
        } else if r.has_unverifiable() {
            unverifiable += 1;
        } else {
            proved_all += 1;
        }
        program_lines.push(format!(
            "    \"{}\": {{{}}}",
            json_escape(key),
            fields.join(", ")
        ));
    }
    out.push_str(&program_lines.join(",\n"));
    out.push_str("\n  },\n");
    out.push_str(&format!(
        "  \"summary\": {{\"programs\": {}, \"proved\": {}, \"violating\": {}, \
         \"suppressed\": {}, \"unverifiable\": {}}}\n",
        keyed.len(),
        proved_all,
        violating,
        suppressed_count,
        unverifiable
    ));
    out.push_str("}\n");
    out
}

// ---------------------------------------------------------------- explain

/// Documentation for one model-checker violation class.
pub struct ModelDoc {
    /// Class name (`deadlock`, …).
    pub name: &'static str,
    /// What the class means and why it matters.
    pub what: &'static str,
}

/// Documentation for every class plus directive hygiene.
pub const MODEL_DOCS: [ModelDoc; 5] = [
    ModelDoc {
        name: "deadlock",
        what: "No enabled transition while some rank is unfinished: every \
               non-finished rank is parked on an empty mailbox key or at a \
               rendezvous some rank never joins. The report renders the same \
               wait-for graph (blocked ranks, collective front, unclaimed \
               messages) that `ClusterError::Deadlock` would print at \
               runtime, plus the shortest interleaving reaching the stall. \
               Classic shapes: reversed rings (everyone receives from where \
               nobody sends), tag typos, skipped barriers, recv-before-send \
               cycles.",
    },
    ModelDoc {
        name: "unclaimed",
        what: "Every rank finished, but a mailbox still holds payloads: \
               some send's (src, tag) key is never received on. Harmless at \
               shutdown only if the message was genuinely fire-and-forget — \
               usually it means a tag typo or a peer expression pointing at \
               the wrong neighbor, caught here even though no rank stalls.",
    },
    ModelDoc {
        name: "invalid-peer",
        what: "A send/recv peer expression evaluates outside 0..n for some \
               rank at some checked n — the static twin of \
               `ClusterError::InvalidPeer`. Typical cause: `n + k` arithmetic \
               without a `% n` wrap.",
    },
    ModelDoc {
        name: "collective-mismatch",
        what: "All ranks parked at a rendezvous, but at different \
               collective kinds (one in `barrier`, another in `gather`) — \
               the static twin of `ClusterError::CollectiveMismatch`. Caused \
               by rank-dependent branches selecting different collectives.",
    },
    ModelDoc {
        name: "stale-model-allow",
        what: "A `model:allow(<class>): <reason>` directive that suppresses \
               nothing (no such violation on the impl it is attached to), \
               names an unknown class, or omits its reason. Directives \
               attach to the impl: up to three lines above the `impl` \
               keyword, or anywhere inside the block.",
    },
];

/// Renders the documentation for `name`, or `None` if unknown.
pub fn explain_model(name: &str) -> Option<String> {
    let doc = MODEL_DOCS.iter().find(|d| d.name == name)?;
    Some(format!("{}\n\n{}\n", doc.name, doc.what))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str) -> FileReport {
        check_source("mem.rs", src, &ModelOptions::default())
    }

    fn single(src: &str) -> ProgramReport {
        let rep = check(src);
        assert_eq!(rep.programs.len(), 1, "one program expected");
        rep.programs.into_iter().next().unwrap()
    }

    const RING_OK: &str = r#"
        impl DeviceProgram for RingOk {
            type Output = ();
            fn resume(&mut self, ctx: &mut DeviceCtx, input: Resume) -> Step<()> {
                let n = ctx.num_devices();
                let right = (ctx.rank() + 1) % n;
                let left = (ctx.rank() + n - 1) % n;
                match input {
                    Resume::Start => Step::Yield(Command::Send {
                        dst: right,
                        tag: 7,
                        payload: Bytes::new(),
                    }),
                    Resume::Sent => Step::Yield(Command::Recv { src: left, tag: 7 }),
                    Resume::Received(_) => Step::Yield(Command::Barrier),
                    _ => Step::Done(()),
                }
            }
        }
    "#;

    #[test]
    fn correct_ring_is_proved_at_every_n() {
        let rep = single(RING_OK);
        assert!(!rep.has_violation(), "clean ring: {rep:?}");
        assert!(!rep.has_unverifiable());
        for (n, v) in &rep.results {
            let Verdict::Proved { states, .. } = v else {
                panic!("n={n} not proved: {v:?}")
            };
            assert!(*states > 1);
        }
    }

    const RING_REVERSED: &str = r#"
        impl DeviceProgram for RingReversed {
            type Output = ();
            fn resume(&mut self, ctx: &mut DeviceCtx, input: Resume) -> Step<()> {
                let n = ctx.num_devices();
                let right = (ctx.rank() + 1) % n;
                match input {
                    Resume::Start => Step::Yield(Command::Send {
                        dst: right,
                        tag: 7,
                        payload: Bytes::new(),
                    }),
                    Resume::Sent => Step::Yield(Command::Recv { src: right, tag: 7 }),
                    _ => Step::Done(()),
                }
            }
        }
    "#;

    #[test]
    fn reversed_ring_deadlocks_with_full_frontier() {
        let rep = single(RING_REVERSED);
        // n = 2 is genuinely correct for a reversed ring (left == right).
        let n2 = &rep.results[0];
        assert!(matches!(n2.1, Verdict::Proved { .. }), "{n2:?}");
        let Some(Verdict::Violation(v)) = rep
            .results
            .iter()
            .find(|(n, _)| *n == 4)
            .map(|(_, v)| v.clone())
        else {
            panic!("expected violation at n=4: {rep:?}")
        };
        assert_eq!(v.rule, "deadlock");
        let blocked: Vec<usize> = v.graph.blocked.iter().map(|b| b.rank).collect();
        assert_eq!(blocked, [0, 1, 2, 3]);
        for b in &v.graph.blocked {
            assert_eq!(
                b.cause,
                WaitCause::Recv {
                    src: (b.rank + 1) % 4,
                    tag: 7
                }
            );
        }
        assert_eq!(v.graph.unclaimed.len(), 4);
        assert!(!v.trace.is_empty());
    }

    const SKIPPED_BARRIER: &str = r#"
        impl DeviceProgram for Skipped {
            type Output = ();
            fn resume(&mut self, ctx: &mut DeviceCtx, input: Resume) -> Step<()> {
                match input {
                    Resume::Start => {
                        if ctx.rank() == 0 {
                            return Step::Done(());
                        }
                        Step::Yield(Command::Barrier)
                    }
                    _ => Step::Done(()),
                }
            }
        }
    "#;

    #[test]
    fn skipped_barrier_blames_the_collective_front() {
        let rep = single(SKIPPED_BARRIER);
        let Some(Verdict::Violation(v)) = rep
            .results
            .iter()
            .find(|(n, _)| *n == 4)
            .map(|(_, v)| v.clone())
        else {
            panic!("expected violation: {rep:?}")
        };
        assert_eq!(v.rule, "deadlock");
        let blocked: Vec<usize> = v.graph.blocked.iter().map(|b| b.rank).collect();
        assert_eq!(blocked, [1, 2, 3]);
        assert_eq!(v.graph.finished, vec![0]);
        let front = v.graph.collective.expect("front");
        assert_eq!(
            (front.kind, front.reached, front.absent),
            ("barrier", vec![1, 2, 3], vec![0])
        );
    }

    const BAD_PEER: &str = r#"
        impl DeviceProgram for BadPeer {
            type Output = ();
            fn resume(&mut self, ctx: &mut DeviceCtx, input: Resume) -> Step<()> {
                let n = ctx.num_devices();
                match input {
                    Resume::Start => Step::Yield(Command::Send {
                        dst: n + 2,
                        tag: 1,
                        payload: Bytes::new(),
                    }),
                    _ => Step::Done(()),
                }
            }
        }
    "#;

    #[test]
    fn out_of_range_peer_mirrors_the_runtime_error_text() {
        let rep = single(BAD_PEER);
        let Verdict::Violation(v) = &rep.results.last().unwrap().1 else {
            panic!("expected violation: {rep:?}")
        };
        assert_eq!(v.rule, "invalid-peer");
        assert_eq!(v.message, "device 0: send peer 6 out of range (n = 4)");
    }

    #[test]
    fn model_allow_suppresses_and_goes_stale() {
        let allowed = format!("// model:allow(deadlock): planted exhibit\n{RING_REVERSED}");
        let rep = check(&allowed);
        assert!(rep.programs[0].suppressed);
        assert!(rep.problems.is_empty(), "{:?}", rep.problems);

        let stale = format!("// model:allow(deadlock): nothing here\n{RING_OK}");
        let rep = check(&stale);
        assert!(!rep.programs[0].has_violation());
        assert_eq!(rep.problems.len(), 1);
        assert!(rep.problems[0].message.contains("stale"));

        let unknown = format!("// model:allow(livelock): what\n{RING_OK}");
        let rep = check(&unknown);
        assert!(rep.problems[0].message.contains("unknown class"));
    }

    #[test]
    fn opaque_peers_are_unverifiable_not_proved() {
        let src = r#"
            impl DeviceProgram for Opaque {
                type Output = ();
                fn resume(&mut self, ctx: &mut DeviceCtx, input: Resume) -> Step<()> {
                    match input {
                        Resume::Start => Step::Yield(Command::Recv {
                            src: self.partner,
                            tag: 3,
                        }),
                        _ => Step::Done(()),
                    }
                }
            }
        "#;
        let rep = single(src);
        assert!(rep.has_unverifiable());
        assert!(!rep.has_violation());
    }

    #[test]
    fn certificates_json_is_regress_shaped() {
        let rep = check(RING_OK);
        let json = certificates_json(&rep.programs, &ModelOptions::default());
        assert!(json.contains("\"_meta\""));
        assert!(json.contains("\"mem.rs::RingOk\""));
        assert!(json.contains("\"proved\": 1"));
        assert!(json.contains("\"_states\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn every_model_rule_has_a_doc() {
        for rule in MODEL_RULES {
            assert!(explain_model(rule).is_some(), "missing doc for {rule}");
        }
        assert!(explain_model("stale-model-allow").is_some());
        assert!(explain_model("nope").is_none());
    }
}
