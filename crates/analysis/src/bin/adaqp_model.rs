//! `adaqp-model` — exhaustive small-scope model checking of `DeviceProgram`
//! communication skeletons.
//!
//! ```text
//! adaqp-model --workspace            # check every shipped program at n = 2..4
//! adaqp-model path/to/file.rs …      # check explicit files
//! adaqp-model --json --workspace     # emit the proof-certificate JSON
//! adaqp-model --dot --workspace      # also render violation wait graphs as DOT
//! adaqp-model --explain deadlock     # document a violation class
//! ```
//!
//! Exit status: `0` when every program is proved or suppressed (unverifiable
//! programs are reported but do not fail the run — they are never counted as
//! proved), `1` when any unsuppressed violation or `model:allow` hygiene
//! problem exists, `2` on usage or I/O errors.

use analysis::model::{check_source, AllowProblem, ModelDoc, ProgramReport, Verdict, MODEL_DOCS};
use analysis::{certificates_json, find_root, render_program, workspace_sources, ModelOptions};

fn usage() -> String {
    let classes: Vec<&str> = MODEL_DOCS.iter().map(|d: &ModelDoc| d.name).collect();
    format!(
        "usage: adaqp-model [--json] [--dot] --workspace\n\
         \x20      adaqp-model [--json] [--dot] <file.rs>…\n\
         \x20      adaqp-model --explain <class>\n\
         \n\
         Instantiates every DeviceProgram's communication skeleton on\n\
         n = 2, 3, 4 symbolic ranks, explores all interleavings and\n\
         rank-branch resolutions, and proves deadlock-freedom or prints\n\
         the shortest counterexample in runtime WaitGraph vocabulary.\n\
         \n\
         classes: {}\n",
        classes.join(", ")
    )
}

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut dot = false;
    let mut workspace = false;
    let mut explain: Option<String> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--dot" => dot = true,
            "--workspace" => workspace = true,
            "--explain" => match it.next() {
                Some(name) => explain = Some(name.clone()),
                None => {
                    eprintln!("{}", usage());
                    return 2;
                }
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return 0;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}`\n\n{}", usage());
                return 2;
            }
            path => paths.push(path.to_string()),
        }
    }

    if let Some(name) = explain {
        return match analysis::explain_model(&name) {
            Some(text) => {
                println!("{text}");
                0
            }
            None => {
                eprintln!("unknown class `{name}`\n\n{}", usage());
                2
            }
        };
    }

    if workspace != paths.is_empty() {
        eprintln!("{}", usage());
        return 2;
    }

    let opts = ModelOptions::default();
    let mut programs: Vec<ProgramReport> = Vec::new();
    let mut problems: Vec<AllowProblem> = Vec::new();

    if workspace {
        let root = match find_root() {
            Ok(root) => root,
            Err(e) => {
                eprintln!("adaqp-model: {e}");
                return 2;
            }
        };
        let sources = match workspace_sources(&root) {
            Ok(sources) => sources,
            Err(e) => {
                eprintln!("adaqp-model: {e}");
                return 2;
            }
        };
        for (rel, path) in sources {
            match std::fs::read_to_string(&path) {
                Ok(src) => {
                    let rep = check_source(&rel, &src, &opts);
                    programs.extend(rep.programs);
                    problems.extend(rep.problems);
                }
                Err(e) => {
                    eprintln!("adaqp-model: {rel}: {e}");
                    return 2;
                }
            }
        }
    } else {
        for path in &paths {
            match std::fs::read_to_string(path) {
                Ok(src) => {
                    let rep = check_source(path, &src, &opts);
                    programs.extend(rep.programs);
                    problems.extend(rep.problems);
                }
                Err(e) => {
                    eprintln!("adaqp-model: {path}: {e}");
                    return 2;
                }
            }
        }
    }

    if json {
        println!("{}", certificates_json(&programs, &opts));
    } else {
        for rep in &programs {
            print!("{}", render_program(rep));
            if dot {
                for (_, v) in &rep.results {
                    if let Verdict::Violation(viol) = v {
                        println!("{}", viol.graph.to_dot());
                    }
                }
            }
        }
        let proved = programs
            .iter()
            .filter(|p| !p.has_violation() && !p.has_unverifiable())
            .count();
        let suppressed = programs
            .iter()
            .filter(|p| p.has_violation() && p.suppressed)
            .count();
        let violating = programs
            .iter()
            .filter(|p| p.has_violation() && !p.suppressed)
            .count();
        let unverifiable = programs.iter().filter(|p| p.has_unverifiable()).count();
        println!(
            "adaqp-model: {} programs — {proved} proved, {violating} violating, \
             {suppressed} suppressed, {unverifiable} unverifiable",
            programs.len()
        );
    }
    for p in &problems {
        eprintln!("{}:{}: [stale-model-allow] {}", p.file, p.line, p.message);
    }

    let failing = problems.len()
        + programs
            .iter()
            .filter(|p| p.has_violation() && !p.suppressed)
            .count();
    i32::from(failing > 0)
}
