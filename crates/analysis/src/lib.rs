//! # adaqp-lint — workspace static analysis for simulation invariants
//!
//! The reproduction's headline numbers rest on two invariants the compiler
//! cannot check: all *time* must flow through the simulated clock in
//! `comm::timing` (one stray `Instant::now()` silently corrupts every
//! wall-clock figure), and all result-producing code must be
//! bit-deterministic under a fixed seed (one `HashMap` iteration in the
//! partitioner changes boundary sets, bit-width assignments, and every
//! downstream number). This crate machine-enforces them — offline and
//! dependency-free: with no network or registry there is no `syn`, so a
//! hand-rolled comment/string/raw-string-aware token scanner
//! ([`lexer`]) feeds a small rule engine ([`rules`]).
//!
//! Run it over the workspace:
//!
//! ```text
//! cargo run -p analysis --release -- --workspace
//! ```
//!
//! or over scratch files / fixtures (all token rules active):
//!
//! ```text
//! cargo run -p analysis --release -- path/to/file.rs
//! ```
//!
//! Exit status is nonzero when any unsuppressed violation exists; each is
//! reported as `file:line: [rule] message`. Violations are suppressed only
//! by `// lint:allow(<rule>): <reason>` on the offending line, so every
//! exception carries its justification in-tree. See `DESIGN.md` §7 for the
//! rule inventory and rationale.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod explain;
pub mod lexer;
pub mod model;
pub mod protocol;
pub mod rules;
pub mod scopes;
pub mod workspace;

pub use explain::{explain_rule, RuleDoc};
pub use model::{
    certificates_json, check_source, explain_model, render_program, FileReport, ModelOptions,
    ProgramReport, Verdict, MODEL_RULES,
};
pub use protocol::{extract_skeletons, Skeleton};
pub use rules::{to_json, Finding, RULE_NAMES};
pub use workspace::{find_root, scan_path, scan_workspace, workspace_sources, ScanError};
