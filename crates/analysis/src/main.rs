//! `adaqp-lint` CLI. See the library docs for the rule inventory.

use analysis::{explain_rule, find_root, scan_path, scan_workspace, to_json, Finding};
use std::path::PathBuf;

const USAGE: &str = "\
adaqp-lint: workspace static analysis enforcing simulation invariants

USAGE:
    cargo run -p analysis --release -- [--json] --workspace
    cargo run -p analysis --release -- [--json] [PATH.rs | PATH.toml]...
    cargo run -p analysis --release -- --explain <rule>

Rules: sim-clock, no-panic, det-iter, lossy-cast, no-stray-print,
dep-hygiene, par-disjoint, unit-confusion, no-host-block,
collective-divergence, unmatched-comm.
Suppress with `// lint:allow(<rule>): <reason>` on the offending line;
stale and reason-less directives are themselves violations.
--explain <rule> prints the rule's rationale with a minimal bad/good pair.
--json prints findings as a JSON array on stdout (summary on stderr).
Exit status: 0 clean, 1 violations found, 2 usage or I/O error.";

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return if args.is_empty() { 2 } else { 0 };
    }
    if let Some(pos) = args.iter().position(|a| a == "--explain") {
        let Some(rule) = args.get(pos + 1) else {
            eprintln!("--explain needs a rule name\n{USAGE}");
            return 2;
        };
        let Some(doc) = explain_rule(rule) else {
            eprintln!(
                "unknown rule `{rule}` (known: {})",
                analysis::RULE_NAMES.join(", ")
            );
            return 2;
        };
        println!("{}", analysis::explain::render(doc));
        return 0;
    }
    let json = args.iter().any(|a| a == "--json");
    let mut findings: Vec<Finding> = Vec::new();
    let mut scanned_workspace = false;
    let mut scanned_anything = false;
    for arg in &args {
        let result = if arg == "--json" {
            continue;
        } else if arg == "--workspace" {
            scanned_workspace = true;
            find_root().and_then(|root| scan_workspace(&root))
        } else if arg.starts_with('-') {
            eprintln!("unknown flag `{arg}`\n{USAGE}");
            return 2;
        } else {
            scan_path(&PathBuf::from(arg))
        };
        scanned_anything = true;
        match result {
            Ok(f) => findings.extend(f),
            Err(e) => {
                eprintln!("adaqp-lint: {e}");
                return 2;
            }
        }
    }
    if !scanned_anything {
        eprintln!("nothing to scan\n{USAGE}");
        return 2;
    }
    if json {
        print!("{}", to_json(&findings));
    } else {
        for f in &findings {
            println!("{f}");
        }
    }
    if findings.is_empty() {
        let scope = if scanned_workspace {
            "workspace"
        } else {
            "inputs"
        };
        eprintln!("adaqp-lint: {scope} clean (0 violations)");
        0
    } else {
        eprintln!("adaqp-lint: {} violation(s)", findings.len());
        1
    }
}
