//! `adaqp-lint` CLI. See the library docs for the rule inventory.

use analysis::{explain_rule, find_root, scan_path, scan_workspace, to_json, Finding};
use std::path::PathBuf;

const USAGE: &str = "\
adaqp-lint: workspace static analysis enforcing simulation invariants

USAGE:
    cargo run -p analysis --release -- [--json] --workspace
    cargo run -p analysis --release -- [--json] [PATH.rs | PATH.toml]...
    cargo run -p analysis --release -- --explain <rule>

Rules: sim-clock, no-panic, det-iter, lossy-cast, no-stray-print,
dep-hygiene, par-disjoint, unit-confusion, no-host-block,
collective-divergence, unmatched-comm.
Suppress with `// lint:allow(<rule>): <reason>` on the offending line;
stale and reason-less directives are themselves violations.
--explain <rule> prints the rule's rationale with a minimal bad/good pair.
--json prints findings as a JSON array on stdout (summary on stderr).
--baseline <file> ratchets against a committed --json artifact: findings
whose stable id appears in the baseline are grandfathered (reported but
not failing); only *new* findings exit 1.
Exit status: 0 clean, 1 violations found, 2 usage or I/O error.";

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return if args.is_empty() { 2 } else { 0 };
    }
    if let Some(pos) = args.iter().position(|a| a == "--explain") {
        let Some(rule) = args.get(pos + 1) else {
            eprintln!("--explain needs a rule name\n{USAGE}");
            return 2;
        };
        let Some(doc) = explain_rule(rule) else {
            eprintln!(
                "unknown rule `{rule}` (known: {})",
                analysis::RULE_NAMES.join(", ")
            );
            return 2;
        };
        println!("{}", analysis::explain::render(doc));
        return 0;
    }
    let json = args.iter().any(|a| a == "--json");
    let baseline_ids = match load_baseline(&args) {
        Ok(ids) => ids,
        Err(code) => return code,
    };
    let mut findings: Vec<Finding> = Vec::new();
    let mut scanned_workspace = false;
    let mut scanned_anything = false;
    let mut skip_next = false;
    for arg in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        let result = if arg == "--json" {
            continue;
        } else if arg == "--baseline" {
            skip_next = true;
            continue;
        } else if arg == "--workspace" {
            scanned_workspace = true;
            find_root().and_then(|root| scan_workspace(&root))
        } else if arg.starts_with('-') {
            eprintln!("unknown flag `{arg}`\n{USAGE}");
            return 2;
        } else {
            scan_path(&PathBuf::from(arg))
        };
        scanned_anything = true;
        match result {
            Ok(f) => findings.extend(f),
            Err(e) => {
                eprintln!("adaqp-lint: {e}");
                return 2;
            }
        }
    }
    if !scanned_anything {
        eprintln!("nothing to scan\n{USAGE}");
        return 2;
    }
    if json {
        print!("{}", to_json(&findings));
    }
    let (grandfathered, new): (Vec<&Finding>, Vec<&Finding>) = findings
        .iter()
        .partition(|f| baseline_ids.as_ref().is_some_and(|ids| ids.contains(&f.id)));
    if !json {
        for f in &grandfathered {
            println!("{f}  (baseline)");
        }
        for f in &new {
            println!("{f}");
        }
    }
    if new.is_empty() {
        let scope = if scanned_workspace {
            "workspace"
        } else {
            "inputs"
        };
        if grandfathered.is_empty() {
            eprintln!("adaqp-lint: {scope} clean (0 violations)");
        } else {
            eprintln!(
                "adaqp-lint: {scope} clean ({} grandfathered via baseline, 0 new)",
                grandfathered.len()
            );
        }
        0
    } else {
        eprintln!(
            "adaqp-lint: {} new violation(s){}",
            new.len(),
            if grandfathered.is_empty() {
                String::new()
            } else {
                format!(" ({} grandfathered)", grandfathered.len())
            }
        );
        1
    }
}

/// Reads `--baseline <file>` if present and extracts the `"id"` values from
/// the committed `--json` artifact. Returns `None` when no baseline was
/// requested; `Err` carries the exit code for usage/IO failures.
fn load_baseline(args: &[String]) -> Result<Option<std::collections::BTreeSet<String>>, i32> {
    let Some(pos) = args.iter().position(|a| a == "--baseline") else {
        return Ok(None);
    };
    let Some(path) = args.get(pos + 1) else {
        eprintln!("--baseline needs a file path\n{USAGE}");
        return Err(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("adaqp-lint: {path}: {e}");
            return Err(2);
        }
    };
    let mut ids = std::collections::BTreeSet::new();
    let mut rest = text.as_str();
    while let Some(at) = rest.find("\"id\": \"") {
        rest = &rest[at + 7..];
        if let Some(end) = rest.find('"') {
            ids.insert(rest[..end].to_string());
            rest = &rest[end..];
        }
    }
    Ok(Some(ids))
}
