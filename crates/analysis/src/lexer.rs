//! A comment/string/raw-string-aware Rust token scanner.
//!
//! This is *not* a full Rust lexer: it knows exactly enough to tell code
//! from non-code. The rule engine in [`crate::rules`] only ever needs to ask
//! "is this identifier real code?", so the scanner's one job is to never
//! mistake the contents of a comment, string, raw string, byte string or
//! char literal for program tokens — and, conversely, to never let a quote
//! character inside a comment derail the scan. Everything else (numbers,
//! punctuation) is tokenized crudely but safely.
//!
//! The tricky cases it handles, each covered by a fixture test:
//!
//! * nested block comments (`/* a /* b */ c */`);
//! * string escapes (`"\""`) and multi-line strings;
//! * raw strings with arbitrary hash fences (`r##"… "# …"##`), including
//!   byte raw strings (`br"…"`);
//! * char literals vs. lifetimes (`'a'` vs. `<'a>`), including escaped
//!   (`'\''`) and unicode (`'\u{1F600}'`) chars;
//! * raw identifiers (`r#match`), which must not be mistaken for raw
//!   strings.

/// What a token is. The rule engine cares about `Ident`, `Punct` and
/// `Comment`; the literal kinds exist so their *contents* are provably
/// excluded from rule matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `as`, `unwrap`, …).
    Ident,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// A numeric literal.
    Number,
    /// A string, raw string, byte string or raw byte string literal.
    Str,
    /// A char or byte literal.
    CharLit,
    /// A single punctuation character.
    Punct,
    /// A line or block comment, text included (suppression directives live
    /// here).
    Comment,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Raw text of the token (for `Comment`, the whole comment).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// True when this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// True when this token is the given identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// Tokenizes `src`. Never fails: unexpected bytes become one-char `Punct`
/// tokens and unterminated literals/comments run to end of input.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer {
    fn run(mut self) -> Vec<Tok> {
        while self.i < self.chars.len() {
            let c = self.chars[self.i];
            if c == '\n' {
                self.line += 1;
                self.i += 1;
            } else if c.is_whitespace() {
                self.i += 1;
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment();
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment();
            } else if c == '"' {
                self.string(self.i);
            } else if c == 'b' && self.peek(1) == Some('"') {
                self.string(self.i + 1);
            } else if c == 'b' && self.peek(1) == Some('\'') {
                self.char_or_lifetime(self.i + 1);
            } else if (c == 'r' && matches!(self.peek(1), Some('"' | '#')))
                || (c == 'b'
                    && self.peek(1) == Some('r')
                    && matches!(self.peek(2), Some('"' | '#')))
            {
                self.raw_string_or_raw_ident();
            } else if c == '\'' {
                self.char_or_lifetime(self.i);
            } else if c.is_alphabetic() || c == '_' {
                self.ident();
            } else if c.is_ascii_digit() {
                self.number();
            } else {
                self.push(TokKind::Punct, self.i, self.i + 1, self.line);
                self.i += 1;
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, start: usize, end: usize, line: u32) {
        let text: String = self.chars[start..end.min(self.chars.len())]
            .iter()
            .collect();
        self.out.push(Tok { kind, text, line });
    }

    fn line_comment(&mut self) {
        let (start, start_line) = (self.i, self.line);
        while self.i < self.chars.len() && self.chars[self.i] != '\n' {
            self.i += 1;
        }
        self.push(TokKind::Comment, start, self.i, start_line);
    }

    fn block_comment(&mut self) {
        let (start, start_line) = (self.i, self.line);
        let mut depth = 1usize;
        self.i += 2;
        while self.i < self.chars.len() && depth > 0 {
            match (self.chars[self.i], self.peek(1)) {
                ('/', Some('*')) => {
                    depth += 1;
                    self.i += 2;
                }
                ('*', Some('/')) => {
                    depth -= 1;
                    self.i += 2;
                }
                ('\n', _) => {
                    self.line += 1;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
        self.push(TokKind::Comment, start, self.i, start_line);
    }

    /// Scans a `"…"` literal whose opening quote is at `quote_at` (one past
    /// the `b` prefix for byte strings).
    fn string(&mut self, quote_at: usize) {
        let (start, start_line) = (self.i, self.line);
        self.i = quote_at + 1;
        while self.i < self.chars.len() {
            match self.chars[self.i] {
                '\\' => self.i += 2, // skips the escaped char, incl. \" and \\
                '"' => {
                    self.i += 1;
                    break;
                }
                '\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
        self.push(TokKind::Str, start, self.i, start_line);
    }

    /// Disambiguates `r"…"` / `r#"…"#` / `br##"…"##` (raw strings) from
    /// `r#ident` (raw identifiers). Positioned at the `r` or `b`.
    fn raw_string_or_raw_ident(&mut self) {
        let (start, start_line) = (self.i, self.line);
        let mut j = self.i + 1; // past 'r', or at 'r' for "br"
        if self.chars[self.i] == 'b' {
            j += 1;
        }
        let mut hashes = 0usize;
        while self.chars.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
        if self.chars.get(j) != Some(&'"') {
            // `r#ident` raw identifier (or a stray `r#`): lex as ident.
            self.i = j;
            while self.i < self.chars.len()
                && (self.chars[self.i].is_alphanumeric() || self.chars[self.i] == '_')
            {
                self.i += 1;
            }
            self.push(TokKind::Ident, start, self.i, start_line);
            return;
        }
        // Raw string: runs until `"` followed by `hashes` hash marks.
        self.i = j + 1;
        while self.i < self.chars.len() {
            if self.chars[self.i] == '\n' {
                self.line += 1;
                self.i += 1;
                continue;
            }
            if self.chars[self.i] == '"'
                && (1..=hashes).all(|h| self.chars.get(self.i + h) == Some(&'#'))
            {
                self.i += 1 + hashes;
                break;
            }
            self.i += 1;
        }
        self.push(TokKind::Str, start, self.i, start_line);
    }

    /// Disambiguates char literals from lifetimes. `quote_at` is the `'`
    /// (one past the `b` prefix for byte chars).
    fn char_or_lifetime(&mut self, quote_at: usize) {
        let (start, start_line) = (self.i, self.line);
        let next = self.chars.get(quote_at + 1).copied();
        match next {
            // Escaped char: `'\n'`, `'\''`, `'\u{1F600}'` — scan to the
            // closing quote, honoring the escape.
            Some('\\') => {
                self.i = quote_at + 2;
                if self.i < self.chars.len() {
                    self.i += 1; // the escaped character itself
                }
                while self.i < self.chars.len() && self.chars[self.i] != '\'' {
                    self.i += 1;
                }
                self.i = (self.i + 1).min(self.chars.len());
                self.push(TokKind::CharLit, start, self.i, start_line);
            }
            // `'x'` — a plain char literal.
            Some(_) if self.chars.get(quote_at + 2) == Some(&'\'') => {
                self.i = quote_at + 3;
                self.push(TokKind::CharLit, start, self.i, start_line);
            }
            // `'ident` — a lifetime.
            Some(c) if c.is_alphabetic() || c == '_' => {
                self.i = quote_at + 2;
                while self.i < self.chars.len()
                    && (self.chars[self.i].is_alphanumeric() || self.chars[self.i] == '_')
                {
                    self.i += 1;
                }
                self.push(TokKind::Lifetime, start, self.i, start_line);
            }
            // Malformed input: emit the quote as punctuation and move on.
            _ => {
                self.push(TokKind::Punct, start, quote_at + 1, start_line);
                self.i = quote_at + 1;
            }
        }
    }

    fn ident(&mut self) {
        let (start, start_line) = (self.i, self.line);
        while self.i < self.chars.len()
            && (self.chars[self.i].is_alphanumeric() || self.chars[self.i] == '_')
        {
            self.i += 1;
        }
        self.push(TokKind::Ident, start, self.i, start_line);
    }

    fn number(&mut self) {
        let (start, start_line) = (self.i, self.line);
        while self.i < self.chars.len() {
            let c = self.chars[self.i];
            if c.is_alphanumeric() || c == '_' {
                self.i += 1;
            } else if c == '.'
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                && self.chars[start..self.i].iter().all(|&d| d != '.')
            {
                // `1.5` continues the number; `0..n` and `1.0.to_string()`
                // leave the dot(s) to punctuation.
                self.i += 1;
            } else {
                break;
            }
        }
        self.push(TokKind::Number, start, self.i, start_line);
    }
}
