//! The rule engine: six rules over the token stream (plus one over
//! `Cargo.toml` text), file classification, `#[cfg(test)]` exemption and
//! `lint:allow` suppression handling.
//!
//! | rule        | what it guards                                              |
//! |-------------|-------------------------------------------------------------|
//! | `sim-clock` | all time flows through the simulated clock (`comm::timing`) |
//! | `no-panic`  | library code reports errors, it does not abort              |
//! | `det-iter`  | result-producing crates iterate in deterministic order      |
//! | `lossy-cast`| narrowing `as` casts in quant kernels are deliberate        |
//! | `no-stray-print` | library crates stay silent; output goes through typed APIs |
//! | `dep-hygiene`| crate deps route through `[workspace.dependencies]`        |
//!
//! A violation is suppressed only by `// lint:allow(<rule>): <reason>` on
//! the offending line (or, for multi-line expressions, a standalone comment
//! on the line directly above). The reason is mandatory: an allow without
//! one is itself reported.

use crate::lexer::{lex, Tok, TokKind};

/// Names of all rules, in reporting order.
pub const RULE_NAMES: [&str; 6] = [
    "sim-clock",
    "no-panic",
    "det-iter",
    "lossy-cast",
    "no-stray-print",
    "dep-hygiene",
];

/// Files exempt from `sim-clock`: the simulated clock itself, the telemetry
/// export paths (which legitimately timestamp host-side artifacts), and the
/// obs profiling timer (whose measurements are diagnostic-flagged and never
/// enter simulated results).
const SIM_CLOCK_ALLOWLIST: [&str; 4] = [
    "crates/comm/src/timing.rs",
    "crates/comm/src/telemetry.rs",
    "crates/core/src/telemetry.rs",
    "crates/obs/src/timer.rs",
];

/// Macros flagged by `no-stray-print` in library crates: stdout/stderr are
/// the CLI's interface, so libraries must return data instead of printing it.
const PRINT_MACROS: [&str; 4] = ["println", "eprintln", "print", "eprint"];

/// Crates whose outputs feed reported numbers: `HashMap`/`HashSet` there
/// risk iteration-order nondeterminism leaking into results.
const DET_ITER_CRATES: [&str; 6] = ["graph", "quant", "solver", "gnn", "comm", "core"];

/// Narrowing targets flagged by `lossy-cast` inside quant kernels.
const NARROWING_TARGETS: [&str; 5] = ["u8", "i8", "u16", "i16", "f32"];

/// One diagnostic.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Path as reported (workspace-relative for `--workspace` scans).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name.
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// How a `.rs` file is treated by the per-file rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileClass {
    /// Library source of the named crate directory (`crates/<dir>/src`,
    /// excluding `src/bin`). All library rules apply.
    Library {
        /// The directory name under `crates/` (not the package name).
        crate_dir: String,
    },
    /// Binary targets (`src/bin`, `src/main.rs`): `sim-clock` only —
    /// panicking on bad CLI input is fine.
    Bin,
    /// Tests and benches: `sim-clock` only.
    Test,
    /// Examples: `sim-clock` only.
    Example,
    /// Explicitly-passed scratch/fixture file: every token rule applies, so
    /// planted violations always surface.
    Explicit,
}

impl FileClass {
    /// Classifies a workspace-relative, `/`-separated path.
    pub fn classify(rel: &str) -> Option<Self> {
        if rel.starts_with("shims/") || rel.contains("/fixtures/") {
            return None; // outside the invariant boundary / lint test data
        }
        if rel.contains("/tests/") || rel.contains("/benches/") || rel.starts_with("tests/") {
            return Some(FileClass::Test);
        }
        if rel.contains("/examples/") || rel.starts_with("examples/") {
            return Some(FileClass::Example);
        }
        if let Some(rest) = rel.strip_prefix("crates/") {
            let (crate_dir, in_crate) = rest.split_once('/')?;
            if in_crate.starts_with("src/bin/") || in_crate == "src/main.rs" {
                return Some(FileClass::Bin);
            }
            if in_crate.starts_with("src/") {
                return Some(FileClass::Library {
                    crate_dir: crate_dir.to_string(),
                });
            }
        }
        None
    }
}

/// A `lint:allow` directive parsed out of a comment.
#[derive(Debug, Clone)]
struct Allow {
    rule: String,
    line: u32,
    has_reason: bool,
}

fn collect_allows(toks: &[Tok]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for t in toks.iter().filter(|t| t.kind == TokKind::Comment) {
        collect_allows_in_text(&t.text, t.line, &mut allows);
    }
    allows
}

/// Parses every `lint:allow(<rule>): <reason>` occurrence in `text`.
/// Shared with the TOML scanner, where `text` is a `#` comment.
fn collect_allows_in_text(text: &str, line: u32, out: &mut Vec<Allow>) {
    let mut rest = text;
    while let Some(pos) = rest.find("lint:allow(") {
        rest = &rest[pos + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else { break };
        let rule = rest[..close].trim().to_string();
        // Prose *about* the syntax (`lint:allow(<rule>)`) is not a directive.
        if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_lowercase() || c == '-') {
            rest = &rest[close + 1..];
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let has_reason = after
            .strip_prefix(':')
            .is_some_and(|r| !r.trim().is_empty());
        out.push(Allow {
            rule,
            line,
            has_reason,
        });
        rest = &rest[close + 1..];
    }
}

/// Line ranges (inclusive) covered by `#[cfg(test)]`-gated items, which
/// `no-panic`/`det-iter`/`lossy-cast` exempt.
fn test_exempt_ranges(code: &[&Tok]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !(code[i].is_punct('#') && code.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        // Scan the attribute group for `cfg` + `test` (but not `not(test)`).
        let attr_start = i;
        let mut j = i + 2;
        let mut depth = 1usize;
        let (mut saw_cfg, mut saw_test, mut saw_not) = (false, false, false);
        while j < code.len() && depth > 0 {
            if code[j].is_punct('[') {
                depth += 1;
            } else if code[j].is_punct(']') {
                depth -= 1;
            } else if code[j].is_ident("cfg") {
                saw_cfg = true;
            } else if code[j].is_ident("test") {
                saw_test = true;
            } else if code[j].is_ident("not") {
                saw_not = true;
            }
            j += 1;
        }
        i = j;
        if !(saw_cfg && saw_test && !saw_not) {
            continue;
        }
        // The gated item: skip any further attributes, then brace-match its
        // body (a `;`-terminated item has no body to exempt).
        let mut k = j;
        while k < code.len() && !code[k].is_punct('{') && !code[k].is_punct(';') {
            k += 1;
        }
        if k < code.len() && code[k].is_punct('{') {
            let mut depth = 1usize;
            let mut m = k + 1;
            while m < code.len() && depth > 0 {
                if code[m].is_punct('{') {
                    depth += 1;
                } else if code[m].is_punct('}') {
                    depth -= 1;
                }
                m += 1;
            }
            let end = code.get(m - 1).map_or(u32::MAX, |t| t.line);
            ranges.push((code[attr_start].line, end));
            i = m;
        }
    }
    ranges
}

fn in_ranges(line: u32, ranges: &[(u32, u32)]) -> bool {
    ranges.iter().any(|&(a, b)| line >= a && line <= b)
}

/// Scans one Rust source file, returning unsuppressed findings (plus
/// findings for malformed suppressions).
pub fn scan_rust(display_path: &str, rel: &str, class: &FileClass, src: &str) -> Vec<Finding> {
    let toks = lex(src);
    let allows = collect_allows(&toks);
    let code: Vec<&Tok> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
    let exempt = test_exempt_ranges(&code);

    let mut raw = Vec::new();
    let lib_crate = match class {
        FileClass::Library { crate_dir } => Some(crate_dir.as_str()),
        FileClass::Explicit => Some("explicit"),
        _ => None,
    };

    // sim-clock: everywhere except the explicit allowlist.
    if !SIM_CLOCK_ALLOWLIST.contains(&rel) {
        for t in &code {
            if t.is_ident("Instant") || t.is_ident("SystemTime") {
                raw.push(Finding {
                    file: display_path.to_string(),
                    line: t.line,
                    rule: "sim-clock",
                    message: format!(
                        "`{}` bypasses the simulated clock; route time through \
                         comm::timing (allowlist: comm/src/timing.rs, telemetry exporters)",
                        t.text
                    ),
                });
            }
        }
    }

    if let Some(crate_dir) = lib_crate {
        // no-panic: `.unwrap(` / `.expect(` method calls and aborting macros.
        for (idx, t) in code.iter().enumerate() {
            if in_ranges(t.line, &exempt) {
                continue;
            }
            let prev_dot = idx > 0 && code[idx - 1].is_punct('.');
            let next_open = code.get(idx + 1).is_some_and(|n| n.is_punct('('));
            let next_bang = code.get(idx + 1).is_some_and(|n| n.is_punct('!'));
            if (t.is_ident("unwrap") || t.is_ident("expect")) && prev_dot && next_open {
                raw.push(Finding {
                    file: display_path.to_string(),
                    line: t.line,
                    rule: "no-panic",
                    message: format!(
                        "`.{}()` in library code; return a typed error instead",
                        t.text
                    ),
                });
            } else if (t.is_ident("panic") || t.is_ident("todo") || t.is_ident("unimplemented"))
                && next_bang
                && !prev_dot
            {
                raw.push(Finding {
                    file: display_path.to_string(),
                    line: t.line,
                    rule: "no-panic",
                    message: format!(
                        "`{}!` in library code; return a typed error instead",
                        t.text
                    ),
                });
            }
        }

        // no-stray-print: stdout/stderr writes in library code (bins,
        // tests and examples are exempt by classification).
        for (idx, t) in code.iter().enumerate() {
            if in_ranges(t.line, &exempt) {
                continue;
            }
            let prev_dot = idx > 0 && code[idx - 1].is_punct('.');
            let next_bang = code.get(idx + 1).is_some_and(|n| n.is_punct('!'));
            if PRINT_MACROS.iter().any(|m| t.is_ident(m)) && next_bang && !prev_dot {
                raw.push(Finding {
                    file: display_path.to_string(),
                    line: t.line,
                    rule: "no-stray-print",
                    message: format!(
                        "`{}!` in library code; return the text to the caller or \
                         use the telemetry/metrics exporters",
                        t.text
                    ),
                });
            }
        }

        // det-iter: unordered containers in result-producing crates.
        if DET_ITER_CRATES.contains(&crate_dir) || *class == FileClass::Explicit {
            for t in &code {
                if in_ranges(t.line, &exempt) {
                    continue;
                }
                if t.is_ident("HashMap") || t.is_ident("HashSet") {
                    raw.push(Finding {
                        file: display_path.to_string(),
                        line: t.line,
                        rule: "det-iter",
                        message: format!(
                            "`{}` iteration order can leak into results; use \
                             BTreeMap/BTreeSet or sorted iteration",
                            t.text
                        ),
                    });
                }
            }
        }

        // lossy-cast: narrowing `as` casts in quant kernels.
        if crate_dir == "quant" || *class == FileClass::Explicit {
            for (idx, t) in code.iter().enumerate() {
                if in_ranges(t.line, &exempt) || !t.is_ident("as") {
                    continue;
                }
                if let Some(target) = code.get(idx + 1) {
                    if NARROWING_TARGETS.contains(&target.text.as_str()) {
                        raw.push(Finding {
                            file: display_path.to_string(),
                            line: t.line,
                            rule: "lossy-cast",
                            message: format!(
                                "narrowing `as {}` in a quant kernel; annotate if \
                                 the truncation is deliberate",
                                target.text
                            ),
                        });
                    }
                }
            }
        }
    }

    apply_allows(raw, &allows, display_path)
}

/// Scans one crate manifest for the `dep-hygiene` rule: every dependency
/// must resolve through `[workspace.dependencies]` so the offline shim
/// substitution stays total.
pub fn scan_manifest(display_path: &str, src: &str) -> Vec<Finding> {
    let mut raw = Vec::new();
    let mut allows = Vec::new();
    let mut in_dep_section = false;
    for (idx, raw_line) in src.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = raw_line.trim();
        if let Some(pos) = line.find('#') {
            collect_allows_in_text(&line[pos..], lineno, &mut allows);
        }
        let code = line.split('#').next().unwrap_or("").trim();
        if code.is_empty() {
            continue;
        }
        if code.starts_with('[') {
            // `[dependencies.foo]` sub-tables count as dependency entries
            // themselves; plain `[dependencies]` just opens the section.
            let section = code.trim_matches(['[', ']']);
            in_dep_section = section.ends_with("dependencies");
            if in_dep_section && section.contains("dependencies.") {
                raw.push(Finding {
                    file: display_path.to_string(),
                    line: lineno,
                    rule: "dep-hygiene",
                    message: format!(
                        "dependency sub-table `{code}`; use `name = {{ workspace = true }}`"
                    ),
                });
            }
            continue;
        }
        if in_dep_section && code.contains('=') && !code.contains("workspace = true") {
            raw.push(Finding {
                file: display_path.to_string(),
                line: lineno,
                rule: "dep-hygiene",
                message: format!(
                    "dependency `{}` does not use `workspace = true`; all deps must \
                     route through [workspace.dependencies] so the offline shim \
                     substitution stays total",
                    code.split('=').next().unwrap_or(code).trim()
                ),
            });
        }
    }
    apply_allows(raw, &allows, display_path)
}

/// Drops findings covered by a well-formed allow on the same line (or the
/// line directly above, for multi-line expressions); reports reason-less
/// allows as violations in their own right.
fn apply_allows(raw: Vec<Finding>, allows: &[Allow], display_path: &str) -> Vec<Finding> {
    let mut out: Vec<Finding> = raw
        .into_iter()
        .filter(|f| {
            !allows.iter().any(|a| {
                a.rule == f.rule && a.has_reason && (a.line == f.line || a.line + 1 == f.line)
            })
        })
        .collect();
    for a in allows {
        if !a.has_reason {
            out.push(Finding {
                file: display_path.to_string(),
                line: a.line,
                rule: "lint-allow",
                message: format!(
                    "lint:allow({}) without a reason; write `// lint:allow({}): <why>`",
                    a.rule, a.rule
                ),
            });
        } else if !RULE_NAMES.contains(&a.rule.as_str()) {
            out.push(Finding {
                file: display_path.to_string(),
                line: a.line,
                rule: "lint-allow",
                message: format!(
                    "lint:allow({}) names an unknown rule (known: {})",
                    a.rule,
                    RULE_NAMES.join(", ")
                ),
            });
        }
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}
