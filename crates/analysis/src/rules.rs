//! The rule engine: eleven rules over the token stream (plus one over
//! `Cargo.toml` text), file classification, `#[cfg(test)]` exemption and
//! `lint:allow` suppression handling.
//!
//! | rule        | what it guards                                              |
//! |-------------|-------------------------------------------------------------|
//! | `sim-clock` | all time flows through the simulated clock (`comm::timing`) |
//! | `no-panic`  | library code reports errors, it does not abort              |
//! | `det-iter`  | result-producing crates iterate in deterministic order      |
//! | `lossy-cast`| narrowing `as` casts in quant kernels are deliberate        |
//! | `no-stray-print` | library crates stay silent; output goes through typed APIs |
//! | `dep-hygiene`| crate deps route through `[workspace.dependencies]`        |
//! | `par-disjoint` | parallel-kernel closures index output by chunk-derived ids |
//! | `unit-confusion` | host wall-clock and sim-clock seconds never meet        |
//! | `no-host-block` | `DeviceProgram` impls yield instead of blocking the host |
//! | `collective-divergence` | collectives are not guarded by rank-local branches |
//! | `unmatched-comm` | every offset `Recv` has a mirrored `Send` (peer and tag) |
//!
//! `par-disjoint` and `unit-confusion` are *scope-aware*: they consume the brace-tree pass in
//! [`crate::scopes`] instead of the flat token stream, so derivation and
//! unit taint are tracked per function or per closure body. The two
//! protocol rules go further: [`crate::protocol`] extracts a communication
//! *skeleton* (a control-flow tree over yield points) from each
//! `DeviceProgram` impl and checks it for deadlock-shaped defects.
//!
//! A violation is suppressed only by `// lint:allow(<rule>): <reason>` on
//! the offending line (or, for multi-line expressions, a standalone comment
//! on the line directly above). The reason is mandatory: an allow without
//! one is itself reported — and so is an allow that suppresses nothing
//! (`stale-allow`), so suppressions cannot outlive the code they excused.

use crate::lexer::{lex, Tok, TokKind};
use crate::protocol;
use crate::scopes;
use std::collections::BTreeSet;

/// Names of all rules, in reporting order.
pub const RULE_NAMES: [&str; 11] = [
    "sim-clock",
    "no-panic",
    "det-iter",
    "lossy-cast",
    "no-stray-print",
    "dep-hygiene",
    "par-disjoint",
    "unit-confusion",
    "no-host-block",
    "collective-divergence",
    "unmatched-comm",
];

/// Files exempt from `sim-clock`: the simulated clock itself, the telemetry
/// export paths (which legitimately timestamp host-side artifacts), and the
/// obs profiling timer (whose measurements are diagnostic-flagged and never
/// enter simulated results).
const SIM_CLOCK_ALLOWLIST: [&str; 4] = [
    "crates/comm/src/timing.rs",
    "crates/comm/src/telemetry.rs",
    "crates/core/src/telemetry.rs",
    "crates/obs/src/timer.rs",
];

/// Macros flagged by `no-stray-print` in library crates: stdout/stderr are
/// the CLI's interface, so libraries must return data instead of printing it.
const PRINT_MACROS: [&str; 4] = ["println", "eprintln", "print", "eprint"];

/// Crates whose outputs feed reported numbers: `HashMap`/`HashSet` there
/// risk iteration-order nondeterminism leaking into results.
const DET_ITER_CRATES: [&str; 6] = ["graph", "quant", "solver", "gnn", "comm", "core"];

/// Narrowing targets flagged by `lossy-cast` inside quant kernels.
const NARROWING_TARGETS: [&str; 5] = ["u8", "i8", "u16", "i16", "f32"];

/// Entry points of the deterministic parallel runtime whose closures the
/// `par-disjoint` rule analyzes. Their shared closure convention: the first
/// two flattened parameters are the chunk's row range, everything after is
/// an owned output slice.
const PAR_ENTRYPOINTS: [&str; 3] = ["par_chunks_deterministic", "run_range_tasks", "run_tasks"];

/// Blocking host primitives flagged by `no-host-block` inside
/// `DeviceProgram` impls when directly called (followed by `(`). A device
/// state machine must express every wait as a yielded `Command`; parking the
/// host thread inside `resume` deadlocks the single-threaded event loop.
const HOST_BLOCK_CALLS: [&str; 6] = [
    "sleep",
    "park",
    "park_timeout",
    "recv_timeout",
    "recv_deadline",
    "wait_timeout",
];

/// Identifiers that never count toward an index expression's derivation
/// status: cast keywords and primitive type names.
const INDEX_NEUTRAL: [&str; 15] = [
    "as", "usize", "isize", "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128",
    "f32", "f64",
];

/// One diagnostic.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Stable content-derived id (see [`assign_ids`]); empty until assigned.
    pub id: String,
    /// Path as reported (workspace-relative for `--workspace` scans).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name.
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

/// Assigns stable content-derived ids: FNV-1a over
/// `rule|file|normalized snippet`, where the snippet is the finding's
/// source line with whitespace collapsed, plus an occurrence counter so
/// identical lines in one file stay distinct. Line numbers are deliberately
/// excluded — inserting code above a finding must not churn its id, or the
/// baseline ratchet (`--baseline`) would flag grandfathered findings as
/// new on every unrelated edit.
pub fn assign_ids(findings: &mut [Finding], src: &str) {
    let lines: Vec<&str> = src.lines().collect();
    let mut seen: std::collections::BTreeMap<u64, u32> = std::collections::BTreeMap::new();
    for f in findings {
        let snippet = f
            .line
            .checked_sub(1)
            .and_then(|i| lines.get(i as usize))
            .copied()
            .unwrap_or("");
        let normalized = snippet.split_whitespace().collect::<Vec<_>>().join(" ");
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in f
            .rule
            .bytes()
            .chain([b'|'])
            .chain(f.file.bytes())
            .chain([b'|'])
            .chain(normalized.bytes())
        {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let occurrence = seen.entry(hash).or_insert(0);
        f.id = format!("{hash:016x}-{occurrence}");
        *occurrence += 1;
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// How a `.rs` file is treated by the per-file rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileClass {
    /// Library source of the named crate directory (`crates/<dir>/src`,
    /// excluding `src/bin`). All library rules apply.
    Library {
        /// The directory name under `crates/` (not the package name).
        crate_dir: String,
    },
    /// Binary targets (`src/bin`, `src/main.rs`): `sim-clock` plus the
    /// protocol rules — panicking on bad CLI input is fine.
    Bin,
    /// Tests and benches: `sim-clock` plus the protocol rules (a
    /// `DeviceProgram` deadlocks the same way wherever it lives).
    Test,
    /// Examples: `sim-clock` plus the protocol rules.
    Example,
    /// Explicitly-passed scratch/fixture file: every token rule applies, so
    /// planted violations always surface.
    Explicit,
}

impl FileClass {
    /// Classifies a workspace-relative, `/`-separated path.
    pub fn classify(rel: &str) -> Option<Self> {
        if rel.starts_with("shims/") || rel.contains("/fixtures/") {
            return None; // outside the invariant boundary / lint test data
        }
        if rel.contains("/tests/") || rel.contains("/benches/") || rel.starts_with("tests/") {
            return Some(FileClass::Test);
        }
        if rel.contains("/examples/") || rel.starts_with("examples/") {
            return Some(FileClass::Example);
        }
        if let Some(rest) = rel.strip_prefix("crates/") {
            let (crate_dir, in_crate) = rest.split_once('/')?;
            if in_crate.starts_with("src/bin/") || in_crate == "src/main.rs" {
                return Some(FileClass::Bin);
            }
            if in_crate.starts_with("src/") {
                return Some(FileClass::Library {
                    crate_dir: crate_dir.to_string(),
                });
            }
        }
        None
    }
}

/// A `lint:allow` directive parsed out of a comment.
#[derive(Debug, Clone)]
struct Allow {
    rule: String,
    line: u32,
    has_reason: bool,
}

fn collect_allows(toks: &[Tok]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for t in toks.iter().filter(|t| t.kind == TokKind::Comment) {
        collect_allows_in_text(&t.text, t.line, &mut allows);
    }
    allows
}

/// Parses every `lint:allow(<rule>): <reason>` occurrence in `text`.
/// Shared with the TOML scanner, where `text` is a `#` comment.
fn collect_allows_in_text(text: &str, line: u32, out: &mut Vec<Allow>) {
    let mut rest = text;
    while let Some(pos) = rest.find("lint:allow(") {
        rest = &rest[pos + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else { break };
        let rule = rest[..close].trim().to_string();
        // Prose *about* the syntax (`lint:allow(<rule>)`) is not a directive.
        if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_lowercase() || c == '-') {
            rest = &rest[close + 1..];
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let has_reason = after
            .strip_prefix(':')
            .is_some_and(|r| !r.trim().is_empty());
        out.push(Allow {
            rule,
            line,
            has_reason,
        });
        rest = &rest[close + 1..];
    }
}

/// Line ranges (inclusive) covered by `#[cfg(test)]`-gated items, which
/// `no-panic`/`det-iter`/`lossy-cast` exempt.
pub(crate) fn test_exempt_ranges(code: &[&Tok]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !(code[i].is_punct('#') && code.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        // Scan the attribute group for `cfg` + `test` (but not `not(test)`).
        let attr_start = i;
        let mut j = i + 2;
        let mut depth = 1usize;
        let (mut saw_cfg, mut saw_test, mut saw_not) = (false, false, false);
        while j < code.len() && depth > 0 {
            if code[j].is_punct('[') {
                depth += 1;
            } else if code[j].is_punct(']') {
                depth -= 1;
            } else if code[j].is_ident("cfg") {
                saw_cfg = true;
            } else if code[j].is_ident("test") {
                saw_test = true;
            } else if code[j].is_ident("not") {
                saw_not = true;
            }
            j += 1;
        }
        i = j;
        if !(saw_cfg && saw_test && !saw_not) {
            continue;
        }
        // The gated item: skip any further attributes, then brace-match its
        // body (a `;`-terminated item has no body to exempt).
        let mut k = j;
        while k < code.len() && !code[k].is_punct('{') && !code[k].is_punct(';') {
            k += 1;
        }
        if k < code.len() && code[k].is_punct('{') {
            let mut depth = 1usize;
            let mut m = k + 1;
            while m < code.len() && depth > 0 {
                if code[m].is_punct('{') {
                    depth += 1;
                } else if code[m].is_punct('}') {
                    depth -= 1;
                }
                m += 1;
            }
            let end = code.get(m - 1).map_or(u32::MAX, |t| t.line);
            ranges.push((code[attr_start].line, end));
            i = m;
        }
    }
    ranges
}

fn in_ranges(line: u32, ranges: &[(u32, u32)]) -> bool {
    ranges.iter().any(|&(a, b)| line >= a && line <= b)
}

/// Scans one Rust source file, returning unsuppressed findings (plus
/// findings for malformed suppressions).
pub fn scan_rust(display_path: &str, rel: &str, class: &FileClass, src: &str) -> Vec<Finding> {
    let toks = lex(src);
    let allows = collect_allows(&toks);
    let code: Vec<&Tok> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
    let exempt = test_exempt_ranges(&code);

    let mut raw = Vec::new();
    let lib_crate = match class {
        FileClass::Library { crate_dir } => Some(crate_dir.as_str()),
        FileClass::Explicit => Some("explicit"),
        _ => None,
    };

    // sim-clock: everywhere except the explicit allowlist.
    if !SIM_CLOCK_ALLOWLIST.contains(&rel) {
        for t in &code {
            if t.is_ident("Instant") || t.is_ident("SystemTime") {
                raw.push(Finding {
                    id: String::new(),
                    file: display_path.to_string(),
                    line: t.line,
                    rule: "sim-clock",
                    message: format!(
                        "`{}` bypasses the simulated clock; route time through \
                         comm::timing (allowlist: comm/src/timing.rs, telemetry exporters)",
                        t.text
                    ),
                });
            }
        }
    }

    if let Some(crate_dir) = lib_crate {
        // no-panic: `.unwrap(` / `.expect(` method calls and aborting macros.
        for (idx, t) in code.iter().enumerate() {
            if in_ranges(t.line, &exempt) {
                continue;
            }
            let prev_dot = idx > 0 && code[idx - 1].is_punct('.');
            let next_open = code.get(idx + 1).is_some_and(|n| n.is_punct('('));
            let next_bang = code.get(idx + 1).is_some_and(|n| n.is_punct('!'));
            if (t.is_ident("unwrap") || t.is_ident("expect")) && prev_dot && next_open {
                raw.push(Finding {
                    id: String::new(),
                    file: display_path.to_string(),
                    line: t.line,
                    rule: "no-panic",
                    message: format!(
                        "`.{}()` in library code; return a typed error instead",
                        t.text
                    ),
                });
            } else if (t.is_ident("panic") || t.is_ident("todo") || t.is_ident("unimplemented"))
                && next_bang
                && !prev_dot
            {
                raw.push(Finding {
                    id: String::new(),
                    file: display_path.to_string(),
                    line: t.line,
                    rule: "no-panic",
                    message: format!(
                        "`{}!` in library code; return a typed error instead",
                        t.text
                    ),
                });
            }
        }

        // no-stray-print: stdout/stderr writes in library code (bins,
        // tests and examples are exempt by classification).
        for (idx, t) in code.iter().enumerate() {
            if in_ranges(t.line, &exempt) {
                continue;
            }
            let prev_dot = idx > 0 && code[idx - 1].is_punct('.');
            let next_bang = code.get(idx + 1).is_some_and(|n| n.is_punct('!'));
            if PRINT_MACROS.iter().any(|m| t.is_ident(m)) && next_bang && !prev_dot {
                raw.push(Finding {
                    id: String::new(),
                    file: display_path.to_string(),
                    line: t.line,
                    rule: "no-stray-print",
                    message: format!(
                        "`{}!` in library code; return the text to the caller or \
                         use the telemetry/metrics exporters",
                        t.text
                    ),
                });
            }
        }

        // det-iter: unordered containers in result-producing crates.
        if DET_ITER_CRATES.contains(&crate_dir) || *class == FileClass::Explicit {
            for t in &code {
                if in_ranges(t.line, &exempt) {
                    continue;
                }
                if t.is_ident("HashMap") || t.is_ident("HashSet") {
                    raw.push(Finding {
                        id: String::new(),
                        file: display_path.to_string(),
                        line: t.line,
                        rule: "det-iter",
                        message: format!(
                            "`{}` iteration order can leak into results; use \
                             BTreeMap/BTreeSet or sorted iteration",
                            t.text
                        ),
                    });
                }
            }
        }

        // par-disjoint / unit-confusion / no-host-block: rules that key off
        // specific call sites / identifiers, so running them in every
        // library crate costs nothing where those never appear.
        par_disjoint(display_path, &code, &exempt, &mut raw);
        unit_confusion(display_path, &code, &exempt, &mut raw);
        no_host_block(display_path, &code, &exempt, &mut raw);

        // lossy-cast: narrowing `as` casts in quant kernels.
        if crate_dir == "quant" || *class == FileClass::Explicit {
            for (idx, t) in code.iter().enumerate() {
                if in_ranges(t.line, &exempt) || !t.is_ident("as") {
                    continue;
                }
                if let Some(target) = code.get(idx + 1) {
                    if NARROWING_TARGETS.contains(&target.text.as_str()) {
                        raw.push(Finding {
                            id: String::new(),
                            file: display_path.to_string(),
                            line: t.line,
                            rule: "lossy-cast",
                            message: format!(
                                "narrowing `as {}` in a quant kernel; annotate if \
                                 the truncation is deliberate",
                                target.text
                            ),
                        });
                    }
                }
            }
        }
    }

    // collective-divergence / unmatched-comm: the protocol pass runs on
    // every file class — a `DeviceProgram` in an example, test or bin
    // deadlocks the cluster just as hard as a library one. `#[cfg(test)]`
    // impls are exempted inside the pass, consistent with the other
    // structural rules.
    protocol::check(display_path, &code, &exempt, &mut raw);

    let mut findings = apply_allows(raw, &allows, display_path);
    assign_ids(&mut findings, src);
    findings
}

/// Scans one crate manifest for the `dep-hygiene` rule: every dependency
/// must resolve through `[workspace.dependencies]` so the offline shim
/// substitution stays total.
pub fn scan_manifest(display_path: &str, src: &str) -> Vec<Finding> {
    let mut raw = Vec::new();
    let mut allows = Vec::new();
    let mut in_dep_section = false;
    for (idx, raw_line) in src.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = raw_line.trim();
        if let Some(pos) = line.find('#') {
            collect_allows_in_text(&line[pos..], lineno, &mut allows);
        }
        let code = line.split('#').next().unwrap_or("").trim();
        if code.is_empty() {
            continue;
        }
        if code.starts_with('[') {
            // `[dependencies.foo]` sub-tables count as dependency entries
            // themselves; plain `[dependencies]` just opens the section.
            let section = code.trim_matches(['[', ']']);
            in_dep_section = section.ends_with("dependencies");
            if in_dep_section && section.contains("dependencies.") {
                raw.push(Finding {
                    id: String::new(),
                    file: display_path.to_string(),
                    line: lineno,
                    rule: "dep-hygiene",
                    message: format!(
                        "dependency sub-table `{code}`; use `name = {{ workspace = true }}`"
                    ),
                });
            }
            continue;
        }
        if in_dep_section && code.contains('=') && !code.contains("workspace = true") {
            raw.push(Finding {
                id: String::new(),
                file: display_path.to_string(),
                line: lineno,
                rule: "dep-hygiene",
                message: format!(
                    "dependency `{}` does not use `workspace = true`; all deps must \
                     route through [workspace.dependencies] so the offline shim \
                     substitution stays total",
                    code.split('=').next().unwrap_or(code).trim()
                ),
            });
        }
    }
    let mut findings = apply_allows(raw, &allows, display_path);
    assign_ids(&mut findings, src);
    findings
}

/// `SCREAMING_CASE` identifiers are constants: deterministic by definition,
/// so they never change an index expression's derivation status.
fn is_screaming_const(text: &str) -> bool {
    text.chars().any(|c| c.is_ascii_uppercase())
        && text
            .chars()
            .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit())
}

/// Collects a closure's parameter identifiers, flattened in source order
/// (tuple patterns contribute each binding; type ascriptions are skipped).
/// `open` indexes the opening `|`; returns the idents and the index of the
/// closing `|` (or `code.len()` on malformed input).
fn closure_params(code: &[&Tok], open: usize) -> (Vec<String>, usize) {
    let mut idents = Vec::new();
    let mut depth = 0usize;
    let mut in_type = false;
    let mut j = open + 1;
    while j < code.len() {
        let t = code[j];
        if depth == 0 && t.is_punct('|') {
            return (idents, j);
        }
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
            depth = depth.saturating_sub(1);
        } else if depth == 0 && t.is_punct(':') {
            in_type = true;
        } else if depth == 0 && t.is_punct(',') {
            in_type = false;
        } else if !in_type
            && t.kind == TokKind::Ident
            && !matches!(t.text.as_str(), "mut" | "ref" | "move")
        {
            idents.push(t.text.clone());
        }
        j += 1;
    }
    (idents, code.len())
}

/// True when the identifier at `idx` participates in an index expression's
/// derivation status (not a field/method after `.`, not a cast keyword or
/// primitive, not a constant).
fn counts_for_derivation(code: &[&Tok], idx: usize) -> bool {
    let t = code[idx];
    t.kind == TokKind::Ident
        && (idx == 0 || !code[idx - 1].is_punct('.'))
        && !INDEX_NEUTRAL.contains(&t.text.as_str())
        && !is_screaming_const(&t.text)
}

/// Grows the derived-identifier set over a closure body: `let` bindings
/// whose initializer mentions a derived identifier (or no identifier at all
/// — chunk-relative constants are deterministic), `for`-loop bindings, and
/// inner-closure parameters all become derived.
fn grow_derived(code: &[&Tok], body: (usize, usize), derived: &mut BTreeSet<String>) {
    let mut i = body.0;
    while i < body.1.min(code.len()) {
        let t = code[i];
        if t.is_ident("let") {
            let mut pat = Vec::new();
            let mut j = i + 1;
            let mut in_type = false;
            while j < body.1 && !code[j].is_punct('=') && !code[j].is_punct(';') {
                if code[j].is_punct(':') {
                    in_type = true;
                } else if !in_type
                    && code[j].kind == TokKind::Ident
                    && !matches!(code[j].text.as_str(), "mut" | "ref")
                {
                    pat.push(code[j].text.clone());
                }
                j += 1;
            }
            if j < body.1 && code[j].is_punct('=') {
                // Initializer runs to the `;` (or a block `{`, for `if let`
                // and friends — stop there and leave the block to the walk).
                let mut depth = 0usize;
                let mut k = j + 1;
                let mut mentions_any = false;
                let mut mentions_derived = false;
                while k < body.1 {
                    let it = code[k];
                    if it.is_punct('(') || it.is_punct('[') {
                        depth += 1;
                    } else if it.is_punct(')') || it.is_punct(']') {
                        depth = depth.saturating_sub(1);
                    } else if depth == 0 && (it.is_punct(';') || it.is_punct('{')) {
                        break;
                    } else if counts_for_derivation(code, k) {
                        mentions_any = true;
                        if derived.contains(&it.text) {
                            mentions_derived = true;
                        }
                    }
                    k += 1;
                }
                if mentions_derived || !mentions_any {
                    derived.extend(pat);
                }
                i = k;
                continue;
            }
            i = j;
            continue;
        }
        if t.is_ident("for") {
            let mut j = i + 1;
            while j < body.1 && !code[j].is_ident("in") && !code[j].is_punct('{') {
                if code[j].kind == TokKind::Ident && !matches!(code[j].text.as_str(), "mut" | "ref")
                {
                    derived.insert(code[j].text.clone());
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }
        // Inner-closure parameters (e.g. `.for_each(|(j, v)| …)`) are local
        // to one chunk by construction.
        if t.is_punct('|') {
            let starts_closure = i == body.0
                || code[i - 1].is_punct('(')
                || code[i - 1].is_punct(',')
                || code[i - 1].is_punct('=')
                || code[i - 1].is_ident("move");
            if starts_closure {
                let (params, close) = closure_params(code, i);
                derived.extend(params);
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
}

/// The `par-disjoint` rule: at every call to a parallel-runtime entry point
/// ([`PAR_ENTRYPOINTS`]) whose closure follows the `(range…, outputs…)`
/// parameter convention, flag any indexing of an output parameter whose
/// index expression mentions identifiers but none *derived from the chunk
/// range* — the token-level shadow of the runtime's disjoint-writes
/// contract (a global or captured index is how chunks come to alias).
fn par_disjoint(display_path: &str, code: &[&Tok], exempt: &[(u32, u32)], raw: &mut Vec<Finding>) {
    for idx in 0..code.len() {
        if !PAR_ENTRYPOINTS.iter().any(|n| code[idx].is_ident(n))
            || !code.get(idx + 1).is_some_and(|t| t.is_punct('('))
            || in_ranges(code[idx].line, exempt)
        {
            continue;
        }
        let close = scopes::matching(code, idx + 1);
        // Locate the closure argument: the first `|` at argument depth.
        let mut depth = 0usize;
        let mut bar = None;
        for (k, t) in code.iter().enumerate().take(close).skip(idx + 2) {
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && t.is_punct('|') {
                bar = Some(k);
                break;
            }
        }
        let Some(bar) = bar else { continue };
        let (params, bar_close) = closure_params(code, bar);
        if params.len() < 3 || bar_close >= close {
            // Fewer than three bindings means no named output after the
            // range pair — nothing to check.
            continue;
        }
        let outputs: BTreeSet<&str> = params[2..].iter().map(String::as_str).collect();
        let mut derived: BTreeSet<String> = params.iter().cloned().collect();
        let body = (bar_close + 1, close);
        grow_derived(code, body, &mut derived);
        let mut m = body.0;
        while m < body.1 {
            let t = code[m];
            let is_output_index = t.kind == TokKind::Ident
                && outputs.contains(t.text.as_str())
                && !(m > 0 && code[m - 1].is_punct('.'))
                && code.get(m + 1).is_some_and(|n| n.is_punct('['));
            if !is_output_index {
                m += 1;
                continue;
            }
            let bracket_close = scopes::matching(code, m + 1);
            let mut seen_ident = false;
            let mut any_derived = false;
            for n in (m + 2)..bracket_close.min(code.len()) {
                if !counts_for_derivation(code, n) {
                    continue;
                }
                seen_ident = true;
                if derived.contains(&code[n].text) {
                    any_derived = true;
                }
            }
            if seen_ident && !any_derived {
                raw.push(Finding {
                    id: String::new(),
                    file: display_path.to_string(),
                    line: t.line,
                    rule: "par-disjoint",
                    message: format!(
                        "output `{}` indexed by identifiers not derived from the \
                         chunk-range parameters; chunks may alias",
                        t.text
                    ),
                });
            }
            m = bracket_close;
        }
    }
}

/// The `no-host-block` rule: inside `impl … DeviceProgram … for …` blocks,
/// flag direct calls to host-blocking primitives ([`HOST_BLOCK_CALLS`]) and
/// `.recv(…)` method calls (channel receives park the OS thread). A
/// `DeviceProgram` advances under a single-threaded event loop: every wait
/// must be expressed as a yielded `Command` so the scheduler can interleave
/// devices; any host-side block stalls the whole cluster. Token-level
/// approximation: an impl header mentioning both `DeviceProgram` and `for`
/// before its `{` is treated as a trait impl.
fn no_host_block(display_path: &str, code: &[&Tok], exempt: &[(u32, u32)], raw: &mut Vec<Finding>) {
    let mut i = 0;
    while i < code.len() {
        if !code[i].is_ident("impl") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let (mut saw_trait, mut saw_for) = (false, false);
        while j < code.len() && !code[j].is_punct('{') && !code[j].is_punct(';') {
            if code[j].is_ident("DeviceProgram") {
                saw_trait = true;
            } else if code[j].is_ident("for") {
                saw_for = true;
            }
            j += 1;
        }
        if j >= code.len() || !code[j].is_punct('{') || !(saw_trait && saw_for) {
            i = j + 1;
            continue;
        }
        let close = scopes::matching(code, j);
        for k in (j + 1)..close.min(code.len()) {
            let t = code[k];
            if t.kind != TokKind::Ident || in_ranges(t.line, exempt) {
                continue;
            }
            let prev_dot = k > 0 && code[k - 1].is_punct('.');
            let next_open = code.get(k + 1).is_some_and(|n| n.is_punct('('));
            if !next_open {
                continue;
            }
            let blocking =
                HOST_BLOCK_CALLS.iter().any(|n| t.is_ident(n)) || (t.is_ident("recv") && prev_dot);
            if blocking {
                raw.push(Finding {
                    id: String::new(),
                    file: display_path.to_string(),
                    line: t.line,
                    rule: "no-host-block",
                    message: format!(
                        "`{}` blocks the host thread inside a DeviceProgram; yield a \
                         Command and let the event loop schedule the wait",
                        t.text
                    ),
                });
            }
        }
        i = close + 1;
    }
}

/// Identifiers carrying host wall-clock seconds: the `host_seconds`
/// telemetry convention plus the std origin APIs and the one sanctioned
/// measurement shim (`comm::timing::measure`).
fn is_host_marked(text: &str) -> bool {
    text.contains("host_seconds")
        || text.contains("host_secs")
        || text == "Instant"
        || text == "SystemTime"
        || text == "as_secs_f64"
        || text == "measure"
}

/// Identifiers carrying simulated-clock seconds (the `sim_seconds` /
/// `total_sim_seconds` result convention).
fn is_sim_marked(text: &str) -> bool {
    text.contains("sim_seconds") || text.contains("sim_secs")
}

/// Classification of one operand's identifiers against the unit markers and
/// the scope's taint sets.
fn classify_units(
    texts: &[&str],
    host_taint: &BTreeSet<String>,
    sim_taint: &BTreeSet<String>,
) -> (bool, bool) {
    let host = texts
        .iter()
        .any(|t| is_host_marked(t) || host_taint.contains(*t));
    let sim = texts
        .iter()
        .any(|t| is_sim_marked(t) || sim_taint.contains(*t));
    (host, sim)
}

/// Identifiers of the primary expression ending just before `op` (walking
/// back over field/path chains and matched groups).
fn operand_idents_back<'a>(code: &[&'a Tok], op: usize, lo: usize) -> Vec<&'a str> {
    let mut idents = Vec::new();
    let mut k = op;
    while k > lo {
        k -= 1;
        let t = code[k];
        if t.is_punct(')') || t.is_punct(']') {
            let (open_c, close_c) = if t.is_punct(')') {
                ('(', ')')
            } else {
                ('[', ']')
            };
            let mut depth = 1usize;
            let mut j = k;
            while j > lo && depth > 0 {
                j -= 1;
                if code[j].is_punct(close_c) {
                    depth += 1;
                } else if code[j].is_punct(open_c) {
                    depth -= 1;
                }
            }
            for t in &code[j..k] {
                if t.kind == TokKind::Ident {
                    idents.push(t.text.as_str());
                }
            }
            k = j;
            continue;
        }
        if t.kind == TokKind::Ident {
            idents.push(t.text.as_str());
            continue;
        }
        if t.kind == TokKind::Number || t.is_punct('.') || t.is_punct(':') {
            continue;
        }
        break;
    }
    idents
}

/// Identifiers of the primary expression starting at `start` (skipping
/// unary prefixes, walking field/path chains and matched groups).
fn operand_idents_fwd<'a>(code: &[&'a Tok], start: usize, hi: usize) -> Vec<&'a str> {
    let mut idents = Vec::new();
    let mut k = start;
    while k < hi
        && (code[k].is_punct('-')
            || code[k].is_punct('*')
            || code[k].is_punct('&')
            || code[k].is_punct('!'))
    {
        k += 1;
    }
    while k < hi.min(code.len()) {
        let t = code[k];
        if t.is_punct('(') || t.is_punct('[') {
            let close = scopes::matching(code, k);
            for t in &code[(k + 1)..close.min(hi)] {
                if t.kind == TokKind::Ident {
                    idents.push(t.text.as_str());
                }
            }
            k = close + 1;
            continue;
        }
        if t.kind == TokKind::Ident {
            idents.push(t.text.as_str());
            k += 1;
            continue;
        }
        if t.kind == TokKind::Number || t.is_punct('.') || t.is_punct(':') {
            k += 1;
            continue;
        }
        break;
    }
    idents
}

/// The `unit-confusion` rule: within each function scope, identifiers
/// carrying host wall-clock seconds and identifiers carrying simulated-clock
/// seconds may not meet in arithmetic or assignment. Taint propagates
/// through `let` bindings inside the scope; struct literals (`field: value`)
/// are deliberately out of scope — that is how `host_seconds` diagnostics
/// are *recorded*, which is fine; mixing them into sim arithmetic is not.
fn unit_confusion(
    display_path: &str,
    code: &[&Tok],
    exempt: &[(u32, u32)],
    raw: &mut Vec<Finding>,
) {
    // Nested fns make body ranges overlap; report each offending line once.
    let mut reported: BTreeSet<u32> = BTreeSet::new();
    for scope in scopes::fn_scopes(code) {
        let (b0, b1) = scope.body;
        let hi = b1.min(code.len());
        let mut host_taint: BTreeSet<String> = BTreeSet::new();
        let mut sim_taint: BTreeSet<String> = BTreeSet::new();
        // Taint pass: a `let` whose initializer mentions a host- (sim-)
        // carrying identifier taints its bindings.
        let mut i = b0;
        while i < hi {
            if !code[i].is_ident("let") {
                i += 1;
                continue;
            }
            let mut pat = Vec::new();
            let mut j = i + 1;
            let mut in_type = false;
            while j < hi && !code[j].is_punct('=') && !code[j].is_punct(';') {
                if code[j].is_punct(':') {
                    in_type = true;
                } else if !in_type
                    && code[j].kind == TokKind::Ident
                    && !matches!(code[j].text.as_str(), "mut" | "ref")
                {
                    pat.push(code[j].text.clone());
                }
                j += 1;
            }
            if j < hi && code[j].is_punct('=') {
                let (mut h, mut s) = (false, false);
                let mut depth = 0usize;
                let mut k = j + 1;
                while k < hi {
                    let it = code[k];
                    if it.is_punct('(') || it.is_punct('[') {
                        depth += 1;
                    } else if it.is_punct(')') || it.is_punct(']') {
                        depth = depth.saturating_sub(1);
                    } else if depth == 0 && (it.is_punct(';') || it.is_punct('{')) {
                        break;
                    } else if it.kind == TokKind::Ident {
                        h = h || is_host_marked(&it.text) || host_taint.contains(&it.text);
                        s = s || is_sim_marked(&it.text) || sim_taint.contains(&it.text);
                    }
                    k += 1;
                }
                if h {
                    host_taint.extend(pat.iter().cloned());
                }
                if s {
                    sim_taint.extend(pat.iter().cloned());
                }
                i = k;
                continue;
            }
            i = j;
        }
        // Operator pass: arithmetic and assignment where the units meet.
        for i in b0..hi {
            let t = code[i];
            if t.kind != TokKind::Punct || in_ranges(t.line, exempt) || reported.contains(&t.line) {
                continue;
            }
            let op = t.text.as_str();
            let next_is = |c: char| code.get(i + 1).is_some_and(|n| n.is_punct(c));
            let prev = i.checked_sub(1).and_then(|p| code.get(p));
            let rhs_start = match op {
                "+" | "-" | "*" | "/" => {
                    if op == "-" && next_is('>') {
                        continue; // `->` arrow
                    }
                    // Binary only: the previous token must end an operand.
                    let binary = prev.is_some_and(|p| {
                        (p.kind == TokKind::Ident
                            && !matches!(
                                p.text.as_str(),
                                "return" | "if" | "else" | "match" | "in" | "move"
                            ))
                            || p.kind == TokKind::Number
                            || p.is_punct(')')
                            || p.is_punct(']')
                    });
                    if !binary {
                        continue;
                    }
                    if next_is('=') {
                        i + 2 // compound assignment `+=` etc.
                    } else {
                        i + 1
                    }
                }
                "=" => {
                    // Skip `==`, `=>`, and the `=` of compound/comparison
                    // operators (those are handled at their first char).
                    if next_is('=') || next_is('>') {
                        continue;
                    }
                    let compound = prev.is_some_and(|p| {
                        ["=", "<", ">", "!", "+", "-", "*", "/", "%", "&", "|", "^"]
                            .contains(&p.text.as_str())
                            && p.kind == TokKind::Punct
                    });
                    if compound {
                        continue;
                    }
                    i + 1
                }
                _ => continue,
            };
            let left = operand_idents_back(code, i, b0);
            let right = operand_idents_fwd(code, rhs_start, b1);
            let (lh, ls) = classify_units(&left, &host_taint, &sim_taint);
            let (rh, rs) = classify_units(&right, &host_taint, &sim_taint);
            if (lh && rs) || (ls && rh) {
                reported.insert(t.line);
                raw.push(Finding {
                    id: String::new(),
                    file: display_path.to_string(),
                    line: t.line,
                    rule: "unit-confusion",
                    message: format!(
                        "host wall-clock seconds meet simulated-clock seconds in `{}`; \
                         keep the units apart (host_seconds is diagnostic-only)",
                        scope.name
                    ),
                });
            }
        }
    }
}

/// Renders findings as a stable JSON array (one object per finding with
/// `id`/`file`/`line`/`rule`/`message`), for `adaqp-lint --json` CI
/// artifacts and the `--baseline` ratchet.
/// Hand-rolled so the analysis crate stays dependency-free; the escaper
/// covers quotes, backslashes and control characters.
pub fn to_json(findings: &[Finding]) -> String {
    fn escape(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("  {\"id\": ");
        escape(&f.id, &mut out);
        out.push_str(", \"file\": ");
        escape(&f.file, &mut out);
        out.push_str(&format!(", \"line\": {}, \"rule\": ", f.line));
        escape(f.rule, &mut out);
        out.push_str(", \"message\": ");
        escape(&f.message, &mut out);
        out.push('}');
    }
    out.push_str("\n]\n");
    out
}

/// Drops findings covered by a well-formed allow on the same line (or the
/// line directly above, for multi-line expressions); reports reason-less
/// allows as violations in their own right.
fn apply_allows(raw: Vec<Finding>, allows: &[Allow], display_path: &str) -> Vec<Finding> {
    let mut used = vec![false; allows.len()];
    let mut out: Vec<Finding> = raw
        .into_iter()
        .filter(|f| {
            let mut suppressed = false;
            // Mark *every* matching allow used, not just the first: two
            // directives covering one finding are both live, not one stale.
            for (i, a) in allows.iter().enumerate() {
                if a.rule == f.rule && a.has_reason && (a.line == f.line || a.line + 1 == f.line) {
                    used[i] = true;
                    suppressed = true;
                }
            }
            !suppressed
        })
        .collect();
    for (i, a) in allows.iter().enumerate() {
        if !a.has_reason {
            out.push(Finding {
                id: String::new(),
                file: display_path.to_string(),
                line: a.line,
                rule: "lint-allow",
                message: format!(
                    "lint:allow({}) without a reason; write `// lint:allow({}): <why>`",
                    a.rule, a.rule
                ),
            });
        } else if !RULE_NAMES.contains(&a.rule.as_str()) {
            out.push(Finding {
                id: String::new(),
                file: display_path.to_string(),
                line: a.line,
                rule: "lint-allow",
                message: format!(
                    "lint:allow({}) names an unknown rule (known: {})",
                    a.rule,
                    RULE_NAMES.join(", ")
                ),
            });
        } else if !used[i] {
            out.push(Finding {
                id: String::new(),
                file: display_path.to_string(),
                line: a.line,
                rule: "stale-allow",
                message: format!(
                    "lint:allow({}) suppresses no finding; remove the stale directive",
                    a.rule
                ),
            });
        }
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}
