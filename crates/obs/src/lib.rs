//! Observability: a deterministic typed metric registry plus exporters.
//!
//! The registry follows the same contract as `tensor::par`: everything it
//! exports by default is **byte-identical at any worker-thread count**.
//! Metrics whose values depend on scheduling or host wall-clock (per-worker
//! chunk counts, [`timer::ScopedTimer`] host-time histograms, measured solve
//! seconds) are recorded with a `diagnostic` flag and excluded from the
//! default snapshot/exports; they remain available programmatically and via
//! the `_all` snapshot variant.
//!
//! Three metric kinds are supported:
//!
//! * [`Counter`](MetricKind::Counter) — monotone sum; merges by addition.
//! * [`Gauge`](MetricKind::Gauge) — last-written value; merges by overwrite
//!   in merge order (device registries merge in rank order, so the result is
//!   deterministic).
//! * [`Histogram`](MetricKind::Histogram) — fixed log2 bucket boundaries
//!   ([`bucket_bounds`]), so two histograms always share bucket edges and
//!   bucket counts merge elementwise.
//!
//! Exporters: Prometheus text format ([`MetricsSnapshot::to_prometheus`])
//! and JSON (the snapshot serializes with `serde_json`). Both use Rust's
//! shortest-roundtrip float formatting, so output is byte-stable.

#![forbid(unsafe_code)]

pub mod critpath;
mod registry;
pub mod regress;
pub mod timer;

pub use registry::{
    bucket_bounds, bucket_index, Metric, MetricKind, MetricsSnapshot, Registry, HISTOGRAM_BUCKETS,
};
