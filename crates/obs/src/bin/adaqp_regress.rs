//! Regression gate CLI: diff a fresh metrics snapshot or kernel-bench JSON
//! against a committed baseline and exit non-zero on any tolerance breach.
//!
//! Usage:
//!   adaqp-regress <baseline.json> <current.json>
//!                 [--tolerances <thresholds.json>] [--default-rel <f64>]
//!
//! The thresholds file deserializes into [`obs::regress::Thresholds`]
//! (`{"default_rel": 1e-9, "per_metric": {"ns": 3.0}}`); `--default-rel`
//! overrides its default tolerance. `_meta` keys are ignored on both sides.
//!
//! `ratio_gates` entries in the thresholds file additionally pin quotients
//! of two metrics in the *current* file (e.g. the 2-bit quantize / fp32
//! serialize timing ratio) — an invariant of the fresh measurement that a
//! relative-drift tolerance cannot express. Exceeding `max_ratio` fails the
//! gate exactly like a regression.

use obs::regress::{check_ratio_gates, compare, Thresholds};
use serde::value::Value;
use std::process::ExitCode;

/// Whether a gate's metrics belong to this artifact at all: a thresholds
/// file is shared between the metrics snapshot and the kernel-bench record,
/// so a gate referencing leaves that exist in neither is ignored here (its
/// leaves vanishing from the artifact it *does* govern is still caught by
/// the baseline diff). Referencing exactly one side is always a violation —
/// that's a typo or a renamed bench, not a different artifact.
fn applies_to(gate: &obs::regress::RatioGate, current: &Value) -> bool {
    let flat = obs::regress::flatten(current);
    flat.contains_key(&gate.numerator) || flat.contains_key(&gate.denominator)
}

fn load_value(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn run(args: &[String]) -> Result<usize, String> {
    let mut positional: Vec<&String> = Vec::new();
    let mut thresholds = Thresholds::default();
    let mut default_rel_override: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerances" => {
                let path = args
                    .get(i + 1)
                    .ok_or("--tolerances needs a file argument")?;
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                thresholds =
                    serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
                i += 2;
            }
            "--default-rel" => {
                let raw = args.get(i + 1).ok_or("--default-rel needs a value")?;
                let v: f64 = raw
                    .parse()
                    .map_err(|_| format!("--default-rel: not a number: {raw}"))?;
                default_rel_override = Some(v);
                i += 2;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other}"));
            }
            _ => {
                positional.push(&args[i]);
                i += 1;
            }
        }
    }
    if positional.len() != 2 {
        return Err("usage: adaqp-regress <baseline.json> <current.json> \
             [--tolerances <thresholds.json>] [--default-rel <f64>]"
            .to_string());
    }
    if let Some(v) = default_rel_override {
        thresholds.default_rel = v;
    }
    let baseline = load_value(positional[0])?;
    let current = load_value(positional[1])?;
    let regressions = compare(&baseline, &current, &thresholds);
    for r in &regressions {
        eprintln!("REGRESSION {r}");
    }
    // Ratio gates assert invariants of the fresh measurement itself (e.g.
    // quantize within 2x of fp32 serialize), so they only see `current`.
    // Gates referencing metrics absent from this artifact are skipped: the
    // same thresholds file governs both the metrics snapshot and the
    // kernel-bench record, and the gate's paths pick which one it applies
    // to — but a gate whose paths match *neither* side would never fire, so
    // only denominator-and-numerator-present or wholly-absent is tolerated.
    let gate_hits = check_ratio_gates(&current, &thresholds)
        .into_iter()
        .filter(|v| v.observed.is_some() || applies_to(&v.gate, &current))
        .collect::<Vec<_>>();
    for v in &gate_hits {
        eprintln!("RATIO GATE {v}");
    }
    Ok(regressions.len() + gate_hits.len())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(0) => {
            println!("adaqp-regress: no regressions");
            ExitCode::SUCCESS
        }
        Ok(n) => {
            eprintln!("adaqp-regress: {n} regression(s)");
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("adaqp-regress: {msg}");
            ExitCode::from(2)
        }
    }
}
