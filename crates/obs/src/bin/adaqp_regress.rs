//! Regression gate CLI: diff a fresh metrics snapshot or kernel-bench JSON
//! against a committed baseline and exit non-zero on any tolerance breach.
//!
//! Usage:
//!   adaqp-regress <baseline.json> <current.json>
//!                 [--tolerances <thresholds.json>] [--default-rel <f64>]
//!
//! The thresholds file deserializes into [`obs::regress::Thresholds`]
//! (`{"default_rel": 1e-9, "per_metric": {"ns": 3.0}}`); `--default-rel`
//! overrides its default tolerance. `_meta` keys are ignored on both sides.

use obs::regress::{compare, Thresholds};
use serde::value::Value;
use std::process::ExitCode;

fn load_value(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn run(args: &[String]) -> Result<usize, String> {
    let mut positional: Vec<&String> = Vec::new();
    let mut thresholds = Thresholds::default();
    let mut default_rel_override: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerances" => {
                let path = args
                    .get(i + 1)
                    .ok_or("--tolerances needs a file argument")?;
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                thresholds =
                    serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
                i += 2;
            }
            "--default-rel" => {
                let raw = args.get(i + 1).ok_or("--default-rel needs a value")?;
                let v: f64 = raw
                    .parse()
                    .map_err(|_| format!("--default-rel: not a number: {raw}"))?;
                default_rel_override = Some(v);
                i += 2;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other}"));
            }
            _ => {
                positional.push(&args[i]);
                i += 1;
            }
        }
    }
    if positional.len() != 2 {
        return Err("usage: adaqp-regress <baseline.json> <current.json> \
             [--tolerances <thresholds.json>] [--default-rel <f64>]"
            .to_string());
    }
    if let Some(v) = default_rel_override {
        thresholds.default_rel = v;
    }
    let baseline = load_value(positional[0])?;
    let current = load_value(positional[1])?;
    let regressions = compare(&baseline, &current, &thresholds);
    for r in &regressions {
        eprintln!("REGRESSION {r}");
    }
    Ok(regressions.len())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(0) => {
            println!("adaqp-regress: no regressions");
            ExitCode::SUCCESS
        }
        Ok(n) => {
            eprintln!("adaqp-regress: {n} regression(s)");
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("adaqp-regress: {msg}");
            ExitCode::from(2)
        }
    }
}
