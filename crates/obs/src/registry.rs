//! The typed metric registry and its snapshot/export forms.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Number of histogram buckets, including the final `+Inf` overflow bucket.
/// Fixed for every histogram so bucket counts always merge elementwise.
pub const HISTOGRAM_BUCKETS: usize = 44;

/// Exponent of the first bucket's upper bound: bucket 0 covers
/// `(-inf, 2^MIN_EXP]`, bucket `i` covers `(2^(MIN_EXP+i-1), 2^(MIN_EXP+i)]`,
/// and the last bucket is the `+Inf` overflow. With `MIN_EXP = -30` the
/// boundaries span ~1 ns to ~2.3 h when observations are seconds.
const MIN_EXP: i32 = -30;

/// Upper bound of histogram bucket `i`; the last bucket returns `+Inf`.
///
/// # Panics
///
/// Panics if `i >= HISTOGRAM_BUCKETS`.
pub fn bucket_bounds(i: usize) -> f64 {
    assert!(i < HISTOGRAM_BUCKETS, "bucket index {i} out of range");
    if i == HISTOGRAM_BUCKETS - 1 {
        f64::INFINITY
    } else {
        (2.0f64).powi(MIN_EXP + i as i32)
    }
}

/// Bucket index an observation falls into (the smallest bucket whose upper
/// bound is `>= v`). Non-finite and non-positive values land in bucket 0.
pub fn bucket_index(v: f64) -> usize {
    if v == f64::INFINITY {
        return HISTOGRAM_BUCKETS - 1;
    }
    if !v.is_finite() || v <= 0.0 {
        return 0;
    }
    for i in 0..HISTOGRAM_BUCKETS - 1 {
        if v <= bucket_bounds(i) {
            return i;
        }
    }
    HISTOGRAM_BUCKETS - 1
}

/// What a metric measures and how it merges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricKind {
    /// Monotone sum; merges by addition.
    Counter,
    /// Last-written value; merges by overwrite in merge order.
    Gauge,
    /// Fixed-boundary log2 histogram; merges bucketwise.
    Histogram,
}

impl MetricKind {
    /// Prometheus `# TYPE` name.
    fn prom_type(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One named metric with its labels and accumulated state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metric {
    /// Metric name (Prometheus-style, e.g. `adaqp_comm_pair_bytes_total`).
    pub name: String,
    /// Label pairs in insertion order (callers pass them pre-sorted where
    /// identity stability matters; the registry key is built from them).
    pub labels: Vec<(String, String)>,
    /// Kind; determines merge semantics and the export shape.
    pub kind: MetricKind,
    /// Counter total, gauge value, or histogram sum of observations.
    pub value: f64,
    /// Histogram observation count (0 for counters and gauges).
    #[serde(default)]
    pub count: u64,
    /// Histogram per-bucket counts, length [`HISTOGRAM_BUCKETS`]; empty for
    /// counters and gauges.
    #[serde(default)]
    pub buckets: Vec<u64>,
    /// True when the value depends on scheduling or host wall-clock and must
    /// stay out of the deterministic default exports.
    #[serde(default)]
    pub diagnostic: bool,
}

impl Metric {
    /// The registry key / Prometheus sample identity: `name{k="v",...}`.
    pub fn identity(&self) -> String {
        identity_of(&self.name, &self.labels)
    }
}

fn identity_of(name: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut s = String::with_capacity(name.len() + 16 * labels.len());
    s.push_str(name);
    s.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(k);
        s.push_str("=\"");
        s.push_str(v);
        s.push('"');
    }
    s.push('}');
    s
}

fn owned_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
        .collect()
}

/// A deterministic metric registry: a map from sample identity to metric,
/// ordered by identity so iteration, merging and export order never depend
/// on insertion order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    metrics: BTreeMap<String, Metric>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no metric has been recorded.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Number of distinct metric samples.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    fn entry(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        diagnostic: bool,
    ) -> &mut Metric {
        let labels = owned_labels(labels);
        let key = identity_of(name, &labels);
        let m = self.metrics.entry(key).or_insert_with(|| Metric {
            name: name.to_string(),
            labels,
            kind,
            value: 0.0,
            count: 0,
            buckets: if kind == MetricKind::Histogram {
                vec![0; HISTOGRAM_BUCKETS]
            } else {
                Vec::new()
            },
            diagnostic,
        });
        debug_assert_eq!(m.kind, kind, "metric {name} re-registered as {kind:?}");
        m
    }

    /// Adds `v` to a counter (created at 0 on first touch).
    pub fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.entry(name, labels, MetricKind::Counter, false).value += v;
    }

    /// Diagnostic-flagged variant of [`Registry::counter_add`].
    pub fn counter_add_diag(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.entry(name, labels, MetricKind::Counter, true).value += v;
    }

    /// Sets a gauge to `v`.
    pub fn gauge_set(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.entry(name, labels, MetricKind::Gauge, false).value = v;
    }

    /// Diagnostic-flagged variant of [`Registry::gauge_set`].
    pub fn gauge_set_diag(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.entry(name, labels, MetricKind::Gauge, true).value = v;
    }

    /// Records one observation into a histogram.
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        let m = self.entry(name, labels, MetricKind::Histogram, false);
        m.value += v;
        m.count += 1;
        m.buckets[bucket_index(v)] += 1;
    }

    /// Diagnostic-flagged variant of [`Registry::observe`] (host-time
    /// histograms and other wall-clock-dependent observations).
    pub fn observe_diag(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        let m = self.entry(name, labels, MetricKind::Histogram, true);
        m.value += v;
        m.count += 1;
        m.buckets[bucket_index(v)] += 1;
    }

    /// Looks a metric up by name and labels.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Metric> {
        self.metrics.get(&identity_of(name, &owned_labels(labels)))
    }

    /// Iterates metrics in identity order.
    pub fn iter(&self) -> impl Iterator<Item = &Metric> {
        self.metrics.values()
    }

    /// Merges `other` into `self`: counters add, gauges take `other`'s
    /// value, histograms merge bucketwise. Call in rank order when folding
    /// per-device registries so gauge overwrites are deterministic.
    pub fn merge(&mut self, other: &Registry) {
        for (key, m) in &other.metrics {
            match self.metrics.get_mut(key) {
                None => {
                    self.metrics.insert(key.clone(), m.clone());
                }
                Some(mine) => match m.kind {
                    MetricKind::Counter => mine.value += m.value,
                    MetricKind::Gauge => mine.value = m.value,
                    MetricKind::Histogram => {
                        mine.value += m.value;
                        mine.count += m.count;
                        for (a, b) in mine.buckets.iter_mut().zip(&m.buckets) {
                            *a += b;
                        }
                    }
                },
            }
        }
    }

    /// Deterministic snapshot: every non-diagnostic metric, identity order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.snapshot_filtered(false)
    }

    /// Full snapshot including diagnostic (scheduling/host-time-dependent)
    /// metrics; not byte-stable across thread counts or machines.
    pub fn snapshot_all(&self) -> MetricsSnapshot {
        self.snapshot_filtered(true)
    }

    fn snapshot_filtered(&self, include_diagnostic: bool) -> MetricsSnapshot {
        MetricsSnapshot {
            metrics: self
                .metrics
                .iter()
                .filter(|(_, m)| include_diagnostic || !m.diagnostic)
                .map(|(k, m)| (k.clone(), m.clone()))
                .collect(),
        }
    }
}

/// A serializable point-in-time view of a registry, keyed by sample
/// identity (so JSON diffs and regression tolerances address metrics by
/// name, not by array position).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Identity -> metric, in identity order.
    pub metrics: BTreeMap<String, Metric>,
}

impl MetricsSnapshot {
    /// Looks a metric up by name and labels.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Metric> {
        self.metrics.get(&identity_of(name, &owned_labels(labels)))
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    /// Histograms expand into `_bucket{le=...}`, `_sum` and `_count`
    /// samples. Floats print shortest-roundtrip, so output is byte-stable.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for m in self.metrics.values() {
            if last_name != Some(m.name.as_str()) {
                out.push_str("# TYPE ");
                out.push_str(&m.name);
                out.push(' ');
                out.push_str(m.kind.prom_type());
                out.push('\n');
                last_name = Some(m.name.as_str());
            }
            match m.kind {
                MetricKind::Counter | MetricKind::Gauge => {
                    out.push_str(&m.identity());
                    out.push(' ');
                    out.push_str(&fmt_f64(m.value));
                    out.push('\n');
                }
                MetricKind::Histogram => {
                    let mut cumulative = 0u64;
                    for (i, &b) in m.buckets.iter().enumerate() {
                        cumulative += b;
                        let mut labels = m.labels.clone();
                        let le = if bucket_bounds(i).is_infinite() {
                            "+Inf".to_string()
                        } else {
                            fmt_f64(bucket_bounds(i))
                        };
                        labels.push(("le".to_string(), le));
                        out.push_str(&identity_of(&format!("{}_bucket", m.name), &labels));
                        out.push(' ');
                        out.push_str(&cumulative.to_string());
                        out.push('\n');
                    }
                    out.push_str(&identity_of(&format!("{}_sum", m.name), &m.labels));
                    out.push(' ');
                    out.push_str(&fmt_f64(m.value));
                    out.push('\n');
                    out.push_str(&identity_of(&format!("{}_count", m.name), &m.labels));
                    out.push(' ');
                    out.push_str(&m.count.to_string());
                    out.push('\n');
                }
            }
        }
        out
    }
}

/// Shortest-roundtrip float formatting (Rust's `Display` for `f64`), the
/// same scheme the JSON printer shim uses; deterministic per value.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        v.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_log2_and_cover_everything() {
        assert_eq!(bucket_bounds(0), (2.0f64).powi(MIN_EXP));
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            assert_eq!(bucket_bounds(i), 2.0 * bucket_bounds(i - 1));
        }
        assert!(bucket_bounds(HISTOGRAM_BUCKETS - 1).is_infinite());
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-5.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(f64::INFINITY), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_index(1e300), HISTOGRAM_BUCKETS - 1);
        // Exact power-of-two boundary lands in its own bucket (le semantics).
        let i = bucket_index(1.0);
        assert_eq!(bucket_bounds(i), 1.0);
    }

    #[test]
    fn counters_add_and_gauges_overwrite() {
        let mut r = Registry::new();
        r.counter_add("hits", &[("peer", "1")], 2.0);
        r.counter_add("hits", &[("peer", "1")], 3.0);
        r.gauge_set("level", &[], 7.0);
        r.gauge_set("level", &[], 4.0);
        assert_eq!(r.get("hits", &[("peer", "1")]).unwrap().value, 5.0);
        assert_eq!(r.get("level", &[]).unwrap().value, 4.0);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn histogram_buckets_accumulate() {
        let mut r = Registry::new();
        for v in [0.5, 0.5, 2.0, 1e-12] {
            r.observe("lat", &[], v);
        }
        let m = r.get("lat", &[]).unwrap();
        assert_eq!(m.count, 4);
        assert!((m.value - 3.000_000_000_001).abs() < 1e-9);
        assert_eq!(m.buckets.iter().sum::<u64>(), 4);
        assert_eq!(m.buckets[bucket_index(0.5)], 2);
    }

    #[test]
    fn merge_semantics_per_kind() {
        let mut a = Registry::new();
        a.counter_add("c", &[], 1.0);
        a.gauge_set("g", &[], 1.0);
        a.observe("h", &[], 0.5);
        let mut b = Registry::new();
        b.counter_add("c", &[], 2.0);
        b.gauge_set("g", &[], 9.0);
        b.observe("h", &[], 0.5);
        b.counter_add("only_b", &[], 4.0);
        a.merge(&b);
        assert_eq!(a.get("c", &[]).unwrap().value, 3.0);
        assert_eq!(a.get("g", &[]).unwrap().value, 9.0);
        let h = a.get("h", &[]).unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.buckets[bucket_index(0.5)], 2);
        assert_eq!(a.get("only_b", &[]).unwrap().value, 4.0);
    }

    #[test]
    fn snapshot_excludes_diagnostic_by_default() {
        let mut r = Registry::new();
        r.counter_add("det", &[], 1.0);
        r.gauge_set_diag("host", &[], 0.123);
        r.observe_diag("host_hist", &[], 0.5);
        let snap = r.snapshot();
        assert!(snap.get("det", &[]).is_some());
        assert!(snap.get("host", &[]).is_none());
        assert!(snap.get("host_hist", &[]).is_none());
        let all = r.snapshot_all();
        assert!(all.get("host", &[]).is_some());
        assert!(all.get("host_hist", &[]).is_some());
    }

    #[test]
    fn snapshot_order_is_insertion_independent() {
        let mut a = Registry::new();
        a.counter_add("z_metric", &[], 1.0);
        a.counter_add("a_metric", &[("peer", "3")], 1.0);
        a.counter_add("a_metric", &[("peer", "1")], 1.0);
        let mut b = Registry::new();
        b.counter_add("a_metric", &[("peer", "1")], 1.0);
        b.counter_add("z_metric", &[], 1.0);
        b.counter_add("a_metric", &[("peer", "3")], 1.0);
        assert_eq!(a.snapshot(), b.snapshot());
        let snap = a.snapshot();
        let keys: Vec<&String> = snap.metrics.keys().collect();
        assert_eq!(
            keys,
            vec!["a_metric{peer=\"1\"}", "a_metric{peer=\"3\"}", "z_metric"]
        );
    }

    #[test]
    fn prometheus_export_shape() {
        let mut r = Registry::new();
        r.counter_add("bytes_total", &[("src", "0"), ("dst", "1")], 42.0);
        r.gauge_set("loss", &[("epoch", "0")], 0.25);
        r.observe("lat_seconds", &[], 0.5);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE bytes_total counter\n"));
        assert!(text.contains("bytes_total{src=\"0\",dst=\"1\"} 42\n"));
        assert!(text.contains("# TYPE loss gauge\n"));
        assert!(text.contains("loss{epoch=\"0\"} 0.25\n"));
        assert!(text.contains("# TYPE lat_seconds histogram\n"));
        assert!(text.contains("lat_seconds_bucket{le=\"0.5\"} 1\n"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("lat_seconds_sum 0.5\n"));
        assert!(text.contains("lat_seconds_count 1\n"));
        // Cumulative bucket counts never decrease.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("lat_seconds_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn snapshot_json_roundtrip() {
        let mut r = Registry::new();
        r.counter_add("c", &[("k", "v")], 3.5);
        r.observe("h", &[], 1.0);
        let snap = r.snapshot();
        let json = serde_json::to_string(&snap).expect("serializes");
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, snap);
    }
}
