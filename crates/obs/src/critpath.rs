//! Critical-path analysis over the event scheduler's causal flight log.
//!
//! The flight recorder (`comm::flight`) logs every scheduling transition of
//! the discrete-event cluster — device resume/block, message departure and
//! arrival, collective front formation and release, and the simulated-time
//! phase advances the trainer charges — each tagged with its causal
//! predecessor (a program-order, message, or collective-rendezvous edge).
//! This module holds the backend-neutral data model for that log plus the
//! post-run analyzer that walks the event DAG to answer "where does the
//! epoch time go?":
//!
//! * the epoch **critical path** as ordered `(rank, phase, sim-interval)`
//!   segments classified into compute / wire / serialization-quant /
//!   collective-wait / assigner-solve;
//! * per-device **busy-vs-blocked idle fractions**, idle time attributed to
//!   the collective rendezvous that closes every epoch, with per-cause wait
//!   counts from the recorded block events;
//! * a top-k **straggler report** ranking devices by time-on-critical-path.
//!
//! The analyzer replays the trainer's charges exactly: per `(rank, epoch)`
//! it re-folds the recorded phase advances in log order and composes the
//! epoch length with the same floating-point operation order as
//! `comm::TimeBreakdown` (`serial_total` / `overlapped_total` / the PipeGCN
//! composition), so every reported number is bit-identical to the run's own
//! `total_sim_seconds`. Everything here is deterministic: same config, same
//! log, same report bytes — at any worker-thread count.

use serde::{Deserialize, Serialize};
use serde_json::{Map, Value};
use std::collections::BTreeMap;

/// Simulated-time phase of one charge, mirroring `comm::TimeCategory`
/// bucket-for-bucket (the recorder converts by stable index so `obs` stays
/// free of a `comm` dependency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Phase {
    /// Message transfer time (halo exchange, allreduce).
    Comm,
    /// Central-graph computation (overlappable with `Comm`).
    CentralComp,
    /// Marginal-graph computation.
    MarginalComp,
    /// Quantization + de-quantization kernels.
    Quant,
    /// Bit-width assigner solve.
    Solve,
}

impl Phase {
    /// Every phase, in `comm::TimeCategory::ALL` order.
    pub const ALL: [Phase; 5] = [
        Phase::Comm,
        Phase::CentralComp,
        Phase::MarginalComp,
        Phase::Quant,
        Phase::Solve,
    ];

    /// Stable index matching `comm::TimeCategory::index`.
    pub fn index(self) -> usize {
        match self {
            Phase::Comm => 0,
            Phase::CentralComp => 1,
            Phase::MarginalComp => 2,
            Phase::Quant => 3,
            Phase::Solve => 4,
        }
    }

    /// The phase with `comm::TimeCategory` index `i`, if any.
    pub fn from_index(i: usize) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.index() == i)
    }

    /// Human-readable label (matches `comm::TimeCategory::label`).
    pub fn label(self) -> &'static str {
        match self {
            Phase::Comm => "comm",
            Phase::CentralComp => "central_comp",
            Phase::MarginalComp => "marginal_comp",
            Phase::Quant => "quant",
            Phase::Solve => "solve",
        }
    }

    /// The critical-path class this phase's time is reported under.
    pub fn class(self) -> SegmentClass {
        match self {
            Phase::Comm => SegmentClass::Wire,
            Phase::CentralComp | Phase::MarginalComp => SegmentClass::Compute,
            Phase::Quant => SegmentClass::SerializationQuant,
            Phase::Solve => SegmentClass::AssignerSolve,
        }
    }
}

/// What happened at one recorded scheduling transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlightOp {
    /// The device was (re)dispatched by the scheduler.
    Resume,
    /// The device parked on an empty `(src, tag)` mailbox key
    /// (`peer`/`tag` name the key — the recorder's image of
    /// `comm::waitgraph::WaitCause::Recv`).
    Block,
    /// The device's program returned.
    Done,
    /// A message left this rank (`peer` = destination; `wire_seconds` /
    /// `latency_seconds` carry the link's `theta * bytes` / `gamma` split).
    MessageDepart,
    /// A message was delivered to this rank (`peer` = source).
    MessageArrive,
    /// The trainer charged `seconds` of simulated `phase` time during
    /// `epoch`, advancing this rank's clock.
    PhaseAdvance,
    /// This rank parked at a collective rendezvous, joining its front
    /// (`collective` names the kind — the recorder's image of
    /// `comm::waitgraph::WaitCause::Collective`).
    CollectiveForm,
    /// The collective front completed and released this rank.
    CollectiveRelease,
}

/// The causal edge kinds connecting flight events into a DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Same-rank program order: the previous event of the same device.
    Program,
    /// A message dependency: the matching departure of a received payload.
    Message,
    /// A collective rendezvous: the park event that completed the front.
    Rendezvous,
}

/// One recorded scheduling transition. Detail fields default to
/// empty/zero and are populated per [`FlightOp`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightEvent {
    /// Global sequence number (scheduler order, 0-based).
    pub seq: u64,
    /// Device rank the event belongs to.
    pub rank: usize,
    /// The rank's simulated clock when the event fired, seconds.
    pub t: f64,
    /// What happened.
    pub op: FlightOp,
    /// Peer rank: destination for departures, source for arrivals and
    /// receive blocks.
    #[serde(default)]
    pub peer: Option<usize>,
    /// Message tag for departures, arrivals and receive blocks.
    #[serde(default)]
    pub tag: Option<u64>,
    /// Payload size for departures and arrivals.
    #[serde(default)]
    pub bytes: Option<usize>,
    /// Bandwidth term (`theta * bytes`) of a departure's link cost, seconds.
    #[serde(default)]
    pub wire_seconds: f64,
    /// Latency term (`gamma`) of a departure's link cost, seconds.
    #[serde(default)]
    pub latency_seconds: f64,
    /// Collective kind name for front formation/release events.
    #[serde(default)]
    pub collective: Option<String>,
    /// Charged phase of a [`FlightOp::PhaseAdvance`].
    #[serde(default)]
    pub phase: Option<Phase>,
    /// Training epoch of a [`FlightOp::PhaseAdvance`].
    #[serde(default)]
    pub epoch: Option<usize>,
    /// Charged simulated seconds of a [`FlightOp::PhaseAdvance`].
    #[serde(default)]
    pub seconds: f64,
    /// Kind of the causal edge to `pred`, absent only for each rank's
    /// first event.
    #[serde(default)]
    pub cause: Option<EdgeKind>,
    /// Sequence number of the causal predecessor event.
    #[serde(default)]
    pub pred: Option<u64>,
}

impl FlightEvent {
    /// A bare event with every detail field empty.
    pub fn new(seq: u64, rank: usize, t: f64, op: FlightOp) -> Self {
        FlightEvent {
            seq,
            rank,
            t,
            op,
            peer: None,
            tag: None,
            bytes: None,
            wire_seconds: 0.0,
            latency_seconds: 0.0,
            collective: None,
            phase: None,
            epoch: None,
            seconds: 0.0,
            cause: None,
            pred: None,
        }
    }

    /// Attaches the causal edge.
    pub fn caused_by(mut self, kind: EdgeKind, pred: u64) -> Self {
        self.cause = Some(kind);
        self.pred = Some(pred);
        self
    }
}

/// The full causal flight log of one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FlightLog {
    /// Device count of the recorded cluster.
    pub num_devices: usize,
    /// Every transition, in scheduler order.
    pub events: Vec<FlightEvent>,
}

impl FlightLog {
    /// Number of recorded events.
    pub fn num_events(&self) -> usize {
        self.events.len()
    }
}

/// How per-phase seconds compose into one epoch's length — the schedule of
/// the method under test (`core` maps `Method` onto this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Schedule {
    /// Every stage serializes: `quant + comm + central + marginal + solve`.
    Serial,
    /// Central compute hides under comm:
    /// `quant + max(comm, central) + marginal + solve`.
    Overlapped,
    /// Comm pipelines across iterations:
    /// `max(comm, central + marginal) + quant + solve`.
    Pipelined,
}

impl Schedule {
    /// Lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Schedule::Serial => "serial",
            Schedule::Overlapped => "overlapped",
            Schedule::Pipelined => "pipelined",
        }
    }
}

/// Classification of one critical-path segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SegmentClass {
    /// Central or marginal graph computation.
    Compute,
    /// Bytes on the wire (halo exchange + allreduce transfer time).
    Wire,
    /// Quantization / de-quantization (message serialization).
    SerializationQuant,
    /// Blocked at a collective rendezvous for a slower rank.
    CollectiveWait,
    /// The bit-width assigner's solve.
    AssignerSolve,
}

impl SegmentClass {
    /// Every class, in reporting order.
    pub const ALL: [SegmentClass; 5] = [
        SegmentClass::Compute,
        SegmentClass::Wire,
        SegmentClass::SerializationQuant,
        SegmentClass::CollectiveWait,
        SegmentClass::AssignerSolve,
    ];

    /// Kebab-case label used in reports, metrics and tolerances.
    pub fn label(self) -> &'static str {
        match self {
            SegmentClass::Compute => "compute",
            SegmentClass::Wire => "wire",
            SegmentClass::SerializationQuant => "serialization-quant",
            SegmentClass::CollectiveWait => "collective-wait",
            SegmentClass::AssignerSolve => "assigner-solve",
        }
    }
}

/// One ordered segment of the epoch critical path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Rank carrying the path over this interval (the epoch's bottleneck).
    pub rank: usize,
    /// Training epoch the interval belongs to.
    pub epoch: usize,
    /// Classification of the interval.
    pub class: SegmentClass,
    /// Phase label behind the classification (`comm`, `quant`, ...; the
    /// overlapped max-leg reports the winning phase).
    pub phase: String,
    /// Segment start on the cluster-wide simulated clock, seconds.
    pub start: f64,
    /// Segment end, seconds.
    pub end: f64,
    /// Segment length, seconds (folded in path order these reproduce the
    /// epoch time bit-for-bit).
    pub seconds: f64,
}

/// One device's busy-vs-blocked profile over the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Device rank.
    pub rank: usize,
    /// Seconds the device was executing its own schedule.
    pub busy_seconds: f64,
    /// Seconds the device idled at the epoch-closing collective rendezvous
    /// waiting for the bottleneck rank.
    pub idle_seconds: f64,
    /// `idle / (busy + idle)`; 0 for an empty run.
    pub idle_fraction: f64,
    /// Seconds of the critical path carried by this rank (epochs where it
    /// was the bottleneck).
    pub critical_seconds: f64,
    /// Recorded point-to-point receive blocks (from the flight log).
    pub recv_waits: u64,
    /// Recorded collective-rendezvous blocks (from the flight log).
    pub collective_waits: u64,
}

/// One straggler line: a rank and its share of the critical path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Straggler {
    /// Device rank.
    pub rank: usize,
    /// Seconds of the path carried by this rank.
    pub critical_seconds: f64,
    /// `critical_seconds / total_seconds`; 0 for an empty run.
    pub share: f64,
}

/// The analyzer's output: the classified critical path and the per-device
/// idle profiles of one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CritPathReport {
    /// Schedule the epoch lengths were composed under.
    pub schedule: String,
    /// Device count.
    pub num_devices: usize,
    /// Epoch count.
    pub epochs: usize,
    /// Total critical-path length, seconds (bit-identical to the run's
    /// `total_sim_seconds`).
    pub total_seconds: f64,
    /// The path, ordered by simulated time.
    pub segments: Vec<Segment>,
    /// Path seconds per class label (every class present, zeros included).
    pub class_totals: BTreeMap<String, f64>,
    /// Cluster-wide seconds devices idled at the epoch rendezvous.
    pub collective_wait_seconds: f64,
    /// `collective_wait_seconds / (num_devices * total_seconds)`; the share
    /// of all device-seconds lost to waiting on stragglers.
    pub collective_wait_share: f64,
    /// Per-device busy/idle profiles, by rank.
    pub devices: Vec<DeviceProfile>,
    /// Top-k ranks by time-on-critical-path, descending.
    pub stragglers: Vec<Straggler>,
}

/// Per-(rank, epoch) phase sums re-folded from the log.
#[derive(Debug, Clone, Copy, Default)]
struct PhaseSums {
    comm: f64,
    central: f64,
    marginal: f64,
    quant: f64,
    solve: f64,
}

impl PhaseSums {
    fn charge(&mut self, phase: Phase, seconds: f64) {
        match phase {
            Phase::Comm => self.comm += seconds,
            Phase::CentralComp => self.central += seconds,
            Phase::MarginalComp => self.marginal += seconds,
            Phase::Quant => self.quant += seconds,
            Phase::Solve => self.solve += seconds,
        }
    }

    /// Epoch length under `schedule`, with the exact floating-point
    /// operation order of `comm::TimeBreakdown`'s compositions.
    fn compose(&self, schedule: Schedule) -> f64 {
        match schedule {
            Schedule::Serial => self.quant + self.comm + self.central + self.marginal + self.solve,
            Schedule::Overlapped => {
                self.quant + self.comm.max(self.central) + self.marginal + self.solve
            }
            Schedule::Pipelined => {
                self.comm.max(self.central + self.marginal) + self.quant + self.solve
            }
        }
    }

    /// The path segments of this epoch in composition order, as
    /// `(class, phase-label, seconds)`. Folding the seconds in order
    /// reproduces [`PhaseSums::compose`] bit-for-bit.
    fn segments(&self, schedule: Schedule) -> Vec<(SegmentClass, &'static str, f64)> {
        match schedule {
            Schedule::Serial => vec![
                (SegmentClass::SerializationQuant, "quant", self.quant),
                (SegmentClass::Wire, "comm", self.comm),
                (SegmentClass::Compute, "central_comp", self.central),
                (SegmentClass::Compute, "marginal_comp", self.marginal),
                (SegmentClass::AssignerSolve, "solve", self.solve),
            ],
            Schedule::Overlapped => {
                let (class, label) = if self.comm >= self.central {
                    (SegmentClass::Wire, "comm")
                } else {
                    (SegmentClass::Compute, "central_comp")
                };
                vec![
                    (SegmentClass::SerializationQuant, "quant", self.quant),
                    (class, label, self.comm.max(self.central)),
                    (SegmentClass::Compute, "marginal_comp", self.marginal),
                    (SegmentClass::AssignerSolve, "solve", self.solve),
                ]
            }
            Schedule::Pipelined => {
                let comp = self.central + self.marginal;
                let (class, label) = if self.comm >= comp {
                    (SegmentClass::Wire, "comm")
                } else {
                    (SegmentClass::Compute, "total_comp")
                };
                vec![
                    (class, label, self.comm.max(comp)),
                    (SegmentClass::SerializationQuant, "quant", self.quant),
                    (SegmentClass::AssignerSolve, "solve", self.solve),
                ]
            }
        }
    }
}

/// Walks the flight log's event DAG and extracts the classified epoch
/// critical path, the per-device idle profiles and the top-`top_k`
/// straggler ranking.
///
/// Deterministic: the report is a pure function of the log and the
/// schedule, so identical runs yield byte-identical reports at any worker
/// thread count.
// The epoch loop walks several per-rank arrays in parallel; explicit
// indices read better than zipped iterator chains here.
#[allow(clippy::needless_range_loop)]
pub fn analyze(log: &FlightLog, schedule: Schedule, top_k: usize) -> CritPathReport {
    let n = log.num_devices;
    // Re-fold the phase advances per (rank, epoch) in log order — the same
    // order the trainer charged them, so every f64 addition matches.
    let mut epochs = 0usize;
    for ev in &log.events {
        if ev.op == FlightOp::PhaseAdvance {
            if let Some(e) = ev.epoch {
                epochs = epochs.max(e + 1);
            }
        }
    }
    let mut sums = vec![vec![PhaseSums::default(); epochs]; n];
    let mut recv_waits = vec![0u64; n];
    let mut collective_waits = vec![0u64; n];
    for ev in &log.events {
        if ev.rank >= n {
            continue;
        }
        match ev.op {
            FlightOp::PhaseAdvance => {
                if let (Some(phase), Some(e)) = (ev.phase, ev.epoch) {
                    if e < epochs {
                        sums[ev.rank][e].charge(phase, ev.seconds);
                    }
                }
            }
            FlightOp::Block => recv_waits[ev.rank] += 1,
            FlightOp::CollectiveForm => collective_waits[ev.rank] += 1,
            _ => {}
        }
    }

    let mut segments = Vec::new();
    let mut total = 0.0f64;
    let mut class_totals: BTreeMap<String, f64> = SegmentClass::ALL
        .iter()
        .map(|c| (c.label().to_string(), 0.0))
        .collect();
    let mut busy = vec![0.0f64; n];
    let mut idle = vec![0.0f64; n];
    let mut critical = vec![0.0f64; n];
    for e in 0..epochs {
        // Bottleneck selection mirrors the runner's last-max fold.
        let mut slowest = 0.0f64;
        let mut bottleneck = 0usize;
        let mut lens = vec![0.0f64; n];
        for (r, len) in lens.iter_mut().enumerate() {
            let t = sums[r][e].compose(schedule);
            *len = t;
            if t >= slowest {
                slowest = t;
                bottleneck = r;
            }
        }
        for r in 0..n {
            busy[r] += lens[r];
            idle[r] += slowest - lens[r];
        }
        critical[bottleneck] += slowest;
        let mut cursor = total;
        for (class, label, seconds) in sums[bottleneck][e].segments(schedule) {
            if seconds == 0.0 {
                continue;
            }
            let start = cursor;
            cursor += seconds;
            if let Some(slot) = class_totals.get_mut(class.label()) {
                *slot += seconds;
            }
            segments.push(Segment {
                rank: bottleneck,
                epoch: e,
                class,
                phase: label.to_string(),
                start,
                end: cursor,
                seconds,
            });
        }
        total += slowest;
    }

    let mut devices = Vec::with_capacity(n);
    let mut idle_total = 0.0f64;
    let mut device_total = 0.0f64;
    for r in 0..n {
        let span = busy[r] + idle[r];
        idle_total += idle[r];
        device_total += span;
        devices.push(DeviceProfile {
            rank: r,
            busy_seconds: busy[r],
            idle_seconds: idle[r],
            idle_fraction: if span > 0.0 { idle[r] / span } else { 0.0 },
            critical_seconds: critical[r],
            recv_waits: recv_waits[r],
            collective_waits: collective_waits[r],
        });
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|a, b| {
        critical[*b]
            .partial_cmp(&critical[*a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(b))
    });
    let stragglers = order
        .into_iter()
        .take(top_k)
        .map(|r| Straggler {
            rank: r,
            critical_seconds: critical[r],
            share: if total > 0.0 {
                critical[r] / total
            } else {
                0.0
            },
        })
        .collect();

    CritPathReport {
        schedule: schedule.label().to_string(),
        num_devices: n,
        epochs,
        total_seconds: total,
        segments,
        class_totals,
        collective_wait_seconds: idle_total,
        collective_wait_share: if device_total > 0.0 {
            idle_total / device_total
        } else {
            0.0
        },
        devices,
        stragglers,
    }
}

impl CritPathReport {
    /// Human-readable multi-line rendering for CLI / bench output.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "critical path ({} schedule): {} epoch(s) on {} device(s), {:.6} s total\n",
            self.schedule, self.epochs, self.num_devices, self.total_seconds
        ));
        let pct = |part: f64| {
            if self.total_seconds > 0.0 {
                100.0 * part / self.total_seconds
            } else {
                0.0
            }
        };
        let classes: Vec<String> = SegmentClass::ALL
            .iter()
            .map(|c| {
                let secs = self.class_totals.get(c.label()).copied().unwrap_or(0.0);
                format!("{} {:.6}s ({:.1}%)", c.label(), secs, pct(secs))
            })
            .collect();
        out.push_str(&format!("  path classes: {}\n", classes.join(", ")));
        out.push_str(&format!(
            "  cluster idle: {:.6} device-seconds at collective rendezvous ({:.1}% of device time)\n",
            self.collective_wait_seconds,
            100.0 * self.collective_wait_share
        ));
        for d in &self.devices {
            out.push_str(&format!(
                "  rank {}: busy {:.6}s, idle {:.6}s ({:.1}% idle; waits: {} recv, {} collective)\n",
                d.rank,
                d.busy_seconds,
                d.idle_seconds,
                100.0 * d.idle_fraction,
                d.recv_waits,
                d.collective_waits
            ));
        }
        let stragglers: Vec<String> = self
            .stragglers
            .iter()
            .map(|s| {
                format!(
                    "rank {} carries {:.6}s ({:.1}%)",
                    s.rank,
                    s.critical_seconds,
                    100.0 * s.share
                )
            })
            .collect();
        out.push_str(&format!("  stragglers: {}\n", stragglers.join(", ")));
        out
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    let mut m = Map::new();
    for (k, v) in fields {
        m.insert(k.to_string(), v);
    }
    Value::Object(m)
}

fn s(text: &str) -> Value {
    Value::String(text.to_string())
}

fn num_u(v: u64) -> Value {
    serde_json::to_value(&v)
}

fn num_f(v: f64) -> Value {
    serde_json::to_value(&v)
}

/// Renders the flight log as a Chrome trace (`chrome://tracing`, Perfetto)
/// with paired `B`/`E` slices for every phase advance *plus* flow (`s`/`f`)
/// arrows along the log's message and collective-rendezvous edges, so
/// causal dependencies render as arrows between device tracks. Instant
/// events mark departures, arrivals and releases so the flow endpoints stay
/// visible.
pub fn chrome_trace_flow(log: &FlightLog) -> String {
    let us = |t: f64| num_f(t * 1e6);
    let mut events: Vec<Value> = Vec::new();
    for rank in 0..log.num_devices {
        let pid = num_u(rank as u64);
        events.push(obj(vec![
            ("name", s("process_name")),
            ("ph", s("M")),
            ("pid", pid.clone()),
            ("tid", num_u(0)),
            ("args", obj(vec![("name", s(&format!("rank {rank}")))])),
        ]));
        events.push(obj(vec![
            ("name", s("thread_name")),
            ("ph", s("M")),
            ("pid", pid.clone()),
            ("tid", num_u(0)),
            ("args", obj(vec![("name", s("scheduler"))])),
        ]));
        for p in Phase::ALL {
            events.push(obj(vec![
                ("name", s("thread_name")),
                ("ph", s("M")),
                ("pid", pid.clone()),
                ("tid", num_u(p.index() as u64 + 1)),
                ("args", obj(vec![("name", s(p.label()))])),
            ]));
        }
    }
    // Resolve each seq's (rank, t) for flow endpoints.
    let mut at: BTreeMap<u64, (usize, f64)> = BTreeMap::new();
    for ev in &log.events {
        at.insert(ev.seq, (ev.rank, ev.t));
    }
    for ev in &log.events {
        let pid = num_u(ev.rank as u64);
        match ev.op {
            FlightOp::PhaseAdvance => {
                if let Some(phase) = ev.phase {
                    let tid = num_u(phase.index() as u64 + 1);
                    events.push(obj(vec![
                        ("name", s(phase.label())),
                        ("cat", s("phase")),
                        ("ph", s("B")),
                        ("pid", pid.clone()),
                        ("tid", tid.clone()),
                        ("ts", us(ev.t)),
                        (
                            "args",
                            obj(vec![
                                ("epoch", num_u(ev.epoch.unwrap_or(0) as u64)),
                                ("seconds", num_f(ev.seconds)),
                            ]),
                        ),
                    ]));
                    events.push(obj(vec![
                        ("name", s(phase.label())),
                        ("cat", s("phase")),
                        ("ph", s("E")),
                        ("pid", pid.clone()),
                        ("tid", tid),
                        ("ts", us(ev.t + ev.seconds)),
                    ]));
                }
            }
            FlightOp::MessageDepart | FlightOp::MessageArrive | FlightOp::CollectiveRelease => {
                let name = match ev.op {
                    FlightOp::MessageDepart => "depart",
                    FlightOp::MessageArrive => "arrive",
                    _ => "release",
                };
                let mut args = vec![];
                if let Some(peer) = ev.peer {
                    args.push(("peer", num_u(peer as u64)));
                }
                if let Some(tag) = ev.tag {
                    args.push(("tag", num_u(tag)));
                }
                if let Some(bytes) = ev.bytes {
                    args.push(("bytes", num_u(bytes as u64)));
                }
                if let Some(kind) = &ev.collective {
                    args.push(("kind", s(kind)));
                }
                events.push(obj(vec![
                    ("name", s(name)),
                    ("cat", s("event")),
                    ("ph", s("i")),
                    ("s", s("t")),
                    ("pid", pid.clone()),
                    ("tid", num_u(0)),
                    ("ts", us(ev.t)),
                    ("args", obj(args)),
                ]));
            }
            _ => {}
        }
        // Cross-rank causal edges become flow arrows; program-order edges
        // are implicit in the per-track layout.
        let (Some(cause), Some(pred)) = (ev.cause, ev.pred) else {
            continue;
        };
        let cat = match cause {
            EdgeKind::Program => continue,
            EdgeKind::Message => "message-edge",
            EdgeKind::Rendezvous => "rendezvous-edge",
        };
        if let Some((src_rank, src_t)) = at.get(&pred) {
            events.push(obj(vec![
                ("name", s(cat)),
                ("cat", s(cat)),
                ("ph", s("s")),
                ("id", num_u(pred)),
                ("pid", num_u(*src_rank as u64)),
                ("tid", num_u(0)),
                ("ts", us(*src_t)),
            ]));
            events.push(obj(vec![
                ("name", s(cat)),
                ("cat", s(cat)),
                ("ph", s("f")),
                ("bp", s("e")),
                ("id", num_u(pred)),
                ("pid", pid),
                ("tid", num_u(0)),
                ("ts", us(ev.t)),
            ]));
        }
    }
    let doc = obj(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", s("ms")),
    ]);
    // lint:allow(no-panic): serializing an in-memory Value tree cannot fail
    serde_json::to_string_pretty(&doc).expect("trace encodes")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn advance(
        seq: u64,
        rank: usize,
        t: f64,
        phase: Phase,
        epoch: usize,
        seconds: f64,
    ) -> FlightEvent {
        let mut ev = FlightEvent::new(seq, rank, t, FlightOp::PhaseAdvance);
        ev.phase = Some(phase);
        ev.epoch = Some(epoch);
        ev.seconds = seconds;
        if seq > 0 {
            ev = ev.caused_by(EdgeKind::Program, seq - 1);
        }
        ev
    }

    fn two_rank_log() -> FlightLog {
        // rank 0: quant 1, comm 4, central 2, marginal 1 (epoch 0)
        // rank 1: quant 1, comm 2, central 1, marginal 1 (epoch 0)
        FlightLog {
            num_devices: 2,
            events: vec![
                advance(0, 0, 0.0, Phase::Quant, 0, 1.0),
                advance(1, 0, 1.0, Phase::Comm, 0, 4.0),
                advance(2, 0, 5.0, Phase::CentralComp, 0, 2.0),
                advance(3, 0, 7.0, Phase::MarginalComp, 0, 1.0),
                advance(4, 1, 0.0, Phase::Quant, 0, 1.0),
                advance(5, 1, 1.0, Phase::Comm, 0, 2.0),
                advance(6, 1, 3.0, Phase::CentralComp, 0, 1.0),
                advance(7, 1, 4.0, Phase::MarginalComp, 0, 1.0),
            ],
        }
    }

    #[test]
    fn serial_path_picks_the_slowest_rank_and_sums_exactly() {
        let report = analyze(&two_rank_log(), Schedule::Serial, 2);
        assert_eq!(report.epochs, 1);
        assert_eq!(report.total_seconds, 8.0);
        assert!(report.segments.iter().all(|seg| seg.rank == 0));
        let folded: f64 = report.segments.iter().map(|seg| seg.seconds).sum();
        assert_eq!(folded, 8.0);
        assert_eq!(report.class_totals["wire"], 4.0);
        assert_eq!(report.class_totals["compute"], 3.0);
        assert_eq!(report.class_totals["serialization-quant"], 1.0);
        assert_eq!(report.class_totals["collective-wait"], 0.0);
        // rank 1 idles 3 of 8 seconds waiting at the rendezvous.
        assert_eq!(report.devices[1].idle_seconds, 3.0);
        assert_eq!(report.devices[1].idle_fraction, 3.0 / 8.0);
        assert_eq!(report.devices[0].idle_seconds, 0.0);
        assert_eq!(report.stragglers[0].rank, 0);
        assert_eq!(report.stragglers[0].share, 1.0);
    }

    #[test]
    fn overlapped_schedule_hides_central_under_comm() {
        let report = analyze(&two_rank_log(), Schedule::Overlapped, 1);
        // rank 0: 1 + max(4, 2) + 1 = 6; rank 1: 1 + max(2, 1) + 1 = 4.
        assert_eq!(report.total_seconds, 6.0);
        let max_leg = report
            .segments
            .iter()
            .find(|seg| seg.class == SegmentClass::Wire)
            .expect("comm wins the max leg");
        assert_eq!(max_leg.seconds, 4.0);
        assert_eq!(report.stragglers.len(), 1);
    }

    #[test]
    fn pipelined_schedule_takes_the_max_leg_first() {
        let report = analyze(&two_rank_log(), Schedule::Pipelined, 2);
        // rank 0: max(4, 3) + 1 = 5; rank 1: max(2, 2) + 1 = 3.
        assert_eq!(report.total_seconds, 5.0);
        assert_eq!(report.segments[0].class, SegmentClass::Wire);
    }

    #[test]
    fn segment_intervals_tile_the_timeline() {
        let report = analyze(&two_rank_log(), Schedule::Serial, 2);
        let mut cursor = 0.0;
        for seg in &report.segments {
            assert_eq!(seg.start, cursor);
            assert!(seg.end > seg.start);
            cursor = seg.end;
        }
        assert_eq!(cursor, report.total_seconds);
    }

    #[test]
    fn wait_counts_come_from_block_events() {
        let mut log = two_rank_log();
        let mut block = FlightEvent::new(8, 1, 5.0, FlightOp::Block);
        block.peer = Some(0);
        block.tag = Some(3);
        log.events.push(block);
        let mut form = FlightEvent::new(9, 1, 5.0, FlightOp::CollectiveForm);
        form.collective = Some("gather".into());
        log.events.push(form);
        let report = analyze(&log, Schedule::Serial, 2);
        assert_eq!(report.devices[1].recv_waits, 1);
        assert_eq!(report.devices[1].collective_waits, 1);
        assert_eq!(report.devices[0].recv_waits, 0);
    }

    #[test]
    fn empty_log_yields_an_empty_report_without_nan() {
        let report = analyze(&FlightLog::default(), Schedule::Serial, 3);
        assert_eq!(report.total_seconds, 0.0);
        assert!(report.segments.is_empty());
        assert!(report.devices.is_empty());
        assert_eq!(report.collective_wait_share, 0.0);
    }

    #[test]
    fn summary_names_classes_devices_and_stragglers() {
        let report = analyze(&two_rank_log(), Schedule::Serial, 2);
        let text = report.summary();
        assert!(text.contains("serial schedule"), "summary: {text}");
        assert!(text.contains("wire"), "summary: {text}");
        assert!(text.contains("rank 1: busy"), "summary: {text}");
        assert!(text.contains("stragglers: rank 0"), "summary: {text}");
    }

    #[test]
    fn report_round_trips_through_serde() {
        let report = analyze(&two_rank_log(), Schedule::Overlapped, 2);
        let json = serde_json::to_string(&report).expect("encodes");
        let back: CritPathReport = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, report);
    }

    #[test]
    fn flight_log_round_trips_through_serde() {
        let mut log = two_rank_log();
        let mut depart = FlightEvent::new(8, 0, 8.0, FlightOp::MessageDepart);
        depart.peer = Some(1);
        depart.tag = Some(9);
        depart.bytes = Some(128);
        depart.wire_seconds = 0.5;
        depart.latency_seconds = 0.1;
        log.events.push(depart.caused_by(EdgeKind::Program, 3));
        let json = serde_json::to_string(&log).expect("encodes");
        let back: FlightLog = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, log);
        assert_eq!(log.num_events(), 9);
    }

    #[test]
    fn flow_trace_emits_slices_and_flow_arrows() {
        let mut log = two_rank_log();
        let mut depart = FlightEvent::new(8, 0, 8.0, FlightOp::MessageDepart);
        depart.peer = Some(1);
        depart.tag = Some(9);
        depart.bytes = Some(128);
        log.events.push(depart.caused_by(EdgeKind::Program, 3));
        let mut arrive = FlightEvent::new(9, 1, 8.0, FlightOp::MessageArrive);
        arrive.peer = Some(0);
        arrive.tag = Some(9);
        arrive.bytes = Some(128);
        log.events.push(arrive.caused_by(EdgeKind::Message, 8));
        let trace = chrome_trace_flow(&log);
        assert!(trace.contains("traceEvents"));
        assert!(trace.contains("\"B\""));
        assert!(trace.contains("\"E\""));
        assert!(trace.contains("\"s\""));
        assert!(trace.contains("\"f\""));
        assert!(trace.contains("message-edge"));
        let parsed: serde_json::Value = serde_json::from_str(&trace).expect("valid JSON");
        let Some(arr) = parsed.get("traceEvents").and_then(|v| v.as_array()) else {
            panic!("traceEvents missing");
        };
        assert!(!arr.is_empty());
    }

    #[test]
    fn phase_indices_round_trip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_index(p.index()), Some(p));
        }
        assert_eq!(Phase::from_index(99), None);
        for p in Phase::ALL {
            // Classification covers every phase.
            let _ = p.class();
        }
    }
}
