//! Regression gate: diff two JSON artifacts (a metrics snapshot or the
//! kernel-bench record) numerically against per-metric tolerances.
//!
//! Both files are flattened to `path -> number` maps (object keys joined
//! with `.`, array indices as `[i]`); keys starting with `_` (`_meta`, host
//! metadata) are skipped. A baseline leaf missing from the current file is a
//! regression; extra leaves in the current file are ignored (new metrics
//! are not regressions). Tolerances are relative:
//! `|current - baseline| <= tol * max(|baseline|, 1e-12)`, looked up by
//! exact path first, then by the path's final segment (`ns`, `value`, ...),
//! then the default.

use serde::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Tolerance configuration for a regression diff.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Thresholds {
    /// Relative tolerance applied when no per-metric override matches.
    pub default_rel: f64,
    /// Overrides by exact flattened path or by final path segment.
    #[serde(default)]
    pub per_metric: BTreeMap<String, f64>,
    /// Absolute ratio ceilings checked against the *current* file alone
    /// (see [`check_ratio_gates`]). A relative tolerance can't express
    /// "quantize must stay within K× of fp32 serialize" — both sides drift
    /// together on a noisy host, so the gate pins their quotient instead.
    #[serde(default)]
    pub ratio_gates: Vec<RatioGate>,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            default_rel: 1e-9,
            per_metric: BTreeMap::new(),
            ratio_gates: Vec::new(),
        }
    }
}

/// An upper bound on the quotient of two metrics in the same artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RatioGate {
    /// Flattened path of the numerator leaf (e.g. `codec_vs_fp32/quantize_2bit.ns`).
    pub numerator: String,
    /// Flattened path of the denominator leaf.
    pub denominator: String,
    /// Maximum allowed `numerator / denominator`.
    pub max_ratio: f64,
}

/// One violated [`RatioGate`]: the quotient exceeded its ceiling, or one of
/// the referenced leaves is missing from the artifact (a gate that silently
/// stops measuring anything would be worse than a failing one).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RatioViolation {
    /// The gate that failed.
    pub gate: RatioGate,
    /// Observed quotient; `None` when a referenced leaf is missing.
    pub observed: Option<f64>,
}

impl std::fmt::Display for RatioViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.observed {
            Some(r) => write!(
                f,
                "{} / {} = {:.3} exceeds max ratio {:.3}",
                self.gate.numerator, self.gate.denominator, r, self.gate.max_ratio
            ),
            None => write!(
                f,
                "{} / {}: metric missing from current file",
                self.gate.numerator, self.gate.denominator
            ),
        }
    }
}

/// Evaluates every ratio gate in `thresholds` against `current` and returns
/// the violations in gate order. Gates look only at the current artifact:
/// they assert an invariant of the measurement itself, not drift from a
/// baseline.
pub fn check_ratio_gates(current: &Value, thresholds: &Thresholds) -> Vec<RatioViolation> {
    let cur = flatten(current);
    let mut out = Vec::new();
    for gate in &thresholds.ratio_gates {
        match (cur.get(&gate.numerator), cur.get(&gate.denominator)) {
            (Some(&n), Some(&d)) => {
                let r = n / d.abs().max(1e-12);
                if r > gate.max_ratio {
                    out.push(RatioViolation {
                        gate: gate.clone(),
                        observed: Some(r),
                    });
                }
            }
            _ => out.push(RatioViolation {
                gate: gate.clone(),
                observed: None,
            }),
        }
    }
    out
}

impl Thresholds {
    /// The tolerance governing `path`.
    pub fn tolerance_for(&self, path: &str) -> f64 {
        if let Some(&t) = self.per_metric.get(path) {
            return t;
        }
        let last = path.rsplit('.').next().unwrap_or(path);
        if let Some(&t) = self.per_metric.get(last) {
            return t;
        }
        self.default_rel
    }
}

/// One metric that moved beyond its tolerance (or disappeared).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Regression {
    /// Flattened path of the offending leaf.
    pub path: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value; `None` when the leaf vanished.
    pub current: Option<f64>,
    /// Observed relative deviation.
    pub rel: f64,
    /// Tolerance that was exceeded.
    pub tol: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.current {
            Some(c) => write!(
                f,
                "{}: baseline {} -> current {} (rel {:.3e} > tol {:.3e})",
                self.path, self.baseline, c, self.rel, self.tol
            ),
            None => write!(f, "{}: baseline {} -> missing", self.path, self.baseline),
        }
    }
}

/// Flattens every numeric leaf of `v` into `path -> value`, skipping object
/// keys that start with `_` (metadata by convention).
pub fn flatten(v: &Value) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    walk(v, String::new(), &mut out);
    out
}

fn walk(v: &Value, prefix: String, out: &mut BTreeMap<String, f64>) {
    match v {
        Value::Object(map) => {
            for (k, child) in map.iter() {
                if k.starts_with('_') {
                    continue;
                }
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                walk(child, path, out);
            }
        }
        Value::Array(items) => {
            for (i, child) in items.iter().enumerate() {
                walk(child, format!("{prefix}[{i}]"), out);
            }
        }
        Value::Number(n) => {
            out.insert(prefix, n.as_f64());
        }
        _ => {}
    }
}

/// Diffs `current` against `baseline` and returns every tolerance breach,
/// in path order.
pub fn compare(baseline: &Value, current: &Value, thresholds: &Thresholds) -> Vec<Regression> {
    let base = flatten(baseline);
    let cur = flatten(current);
    let mut out = Vec::new();
    for (path, &b) in &base {
        let tol = thresholds.tolerance_for(path);
        match cur.get(path) {
            None => out.push(Regression {
                path: path.clone(),
                baseline: b,
                current: None,
                rel: f64::INFINITY,
                tol,
            }),
            Some(&c) => {
                let rel = (c - b).abs() / b.abs().max(1e-12);
                if rel > tol {
                    out.push(Regression {
                        path: path.clone(),
                        baseline: b,
                        current: Some(c),
                        rel,
                        tol,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Value {
        serde_json::from_str(s).expect("valid JSON")
    }

    #[test]
    fn identical_files_pass() {
        let v = parse(r#"{"a": {"ns": 100.0, "threads": 8}, "b": {"ns": 3.5}}"#);
        assert!(compare(&v, &v, &Thresholds::default()).is_empty());
    }

    #[test]
    fn doctored_value_beyond_tolerance_fails() {
        let base = parse(r#"{"m": {"value": 100.0}}"#);
        let bad = parse(r#"{"m": {"value": 150.0}}"#);
        let regs = compare(&base, &bad, &Thresholds::default());
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].path, "m.value");
        assert!((regs[0].rel - 0.5).abs() < 1e-12);
        // Within a loose tolerance the same doctoring passes.
        let loose = Thresholds {
            default_rel: 1.0,
            ..Thresholds::default()
        };
        assert!(compare(&base, &bad, &loose).is_empty());
    }

    #[test]
    fn missing_leaf_is_a_regression_and_extra_is_not() {
        let base = parse(r#"{"a": 1.0, "b": 2.0}"#);
        let cur = parse(r#"{"a": 1.0, "c": 9.0}"#);
        let regs = compare(&base, &cur, &Thresholds::default());
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].path, "b");
        assert!(regs[0].current.is_none());
    }

    #[test]
    fn meta_keys_are_skipped() {
        let base = parse(r#"{"a": 1.0, "_meta": {"cpus": 1}}"#);
        let cur = parse(r#"{"a": 1.0, "_meta": {"cpus": 64}}"#);
        assert!(compare(&base, &cur, &Thresholds::default()).is_empty());
    }

    #[test]
    fn per_metric_override_by_segment_and_path() {
        let base = parse(r#"{"bench": {"ns": 100.0, "threads": 8.0}}"#);
        let cur = parse(r#"{"bench": {"ns": 250.0, "threads": 8.0}}"#);
        // Default tolerance flags the ns drift...
        assert_eq!(compare(&base, &cur, &Thresholds::default()).len(), 1);
        // ...a final-segment override absorbs it...
        let mut per = BTreeMap::new();
        per.insert("ns".to_string(), 3.0);
        let th = Thresholds {
            default_rel: 1e-9,
            per_metric: per.clone(),
            ratio_gates: Vec::new(),
        };
        assert!(compare(&base, &cur, &th).is_empty());
        // ...and an exact-path override wins over the segment one.
        per.insert("bench.ns".to_string(), 0.1);
        let th = Thresholds {
            default_rel: 1e-9,
            per_metric: per,
            ratio_gates: Vec::new(),
        };
        let regs = compare(&base, &cur, &th);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].tol, 0.1);
    }

    #[test]
    fn arrays_flatten_with_indices() {
        let v = parse(r#"{"xs": [1.0, 2.0, {"y": 3.0}]}"#);
        let flat = flatten(&v);
        assert_eq!(flat.get("xs[0]"), Some(&1.0));
        assert_eq!(flat.get("xs[2].y"), Some(&3.0));
    }

    #[test]
    fn thresholds_roundtrip_json() {
        let mut per = BTreeMap::new();
        per.insert("ns".to_string(), 3.0);
        let th = Thresholds {
            default_rel: 1e-6,
            per_metric: per,
            ratio_gates: Vec::new(),
        };
        let json = serde_json::to_string(&th).expect("serializes");
        let back: Thresholds = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, th);
        // per_metric is optional on disk.
        let sparse: Thresholds = serde_json::from_str(r#"{"default_rel": 0.5}"#).expect("parses");
        assert_eq!(sparse.default_rel, 0.5);
        assert!(sparse.per_metric.is_empty());
        assert!(sparse.ratio_gates.is_empty());
    }

    #[test]
    fn ratio_gate_flags_excess_and_passes_within_bound() {
        let th: Thresholds = serde_json::from_str(
            r#"{"default_rel": 1e-9, "ratio_gates": [{
                "numerator": "codec_vs_fp32.quantize_2bit.ns",
                "denominator": "codec_vs_fp32.fp32_serialize.ns",
                "max_ratio": 2.0
            }]}"#,
        )
        .expect("parses");
        let ok = parse(
            r#"{"codec_vs_fp32": {"quantize_2bit": {"ns": 110.0}, "fp32_serialize": {"ns": 60.0}}}"#,
        );
        assert!(check_ratio_gates(&ok, &th).is_empty());
        let bad = parse(
            r#"{"codec_vs_fp32": {"quantize_2bit": {"ns": 130.0}, "fp32_serialize": {"ns": 60.0}}}"#,
        );
        let v = check_ratio_gates(&bad, &th);
        assert_eq!(v.len(), 1);
        let r = v[0].observed.expect("both metrics present");
        assert!((r - 130.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_gate_missing_metric_is_a_violation() {
        let th = Thresholds {
            default_rel: 1e-9,
            per_metric: BTreeMap::new(),
            ratio_gates: vec![RatioGate {
                numerator: "a.ns".to_string(),
                denominator: "gone.ns".to_string(),
                max_ratio: 2.0,
            }],
        };
        let cur = parse(r#"{"a": {"ns": 1.0}}"#);
        let v = check_ratio_gates(&cur, &th);
        assert_eq!(v.len(), 1);
        assert!(v[0].observed.is_none());
        assert!(v[0].to_string().contains("missing"));
    }
}
