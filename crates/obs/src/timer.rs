//! Host-time profiling hook feeding diagnostic histograms.
//!
//! [`ScopedTimer`] measures real wall-clock, which varies with machine load
//! and thread count, so everything it records is diagnostic-flagged and
//! excluded from the deterministic default exports (see the crate docs).
//! This file is on the adaqp-lint sim-clock allowlist for exactly that
//! reason: host time here never leaks into simulated results.

use crate::Registry;
use std::time::Instant;

/// Times a scope on the host clock and records the elapsed seconds into a
/// diagnostic histogram when stopped.
///
/// Stop is explicit (`stop(self, registry)`) rather than `Drop`-based so the
/// registry borrow is only needed at the recording point:
///
/// ```
/// let mut reg = obs::Registry::new();
/// let t = obs::timer::ScopedTimer::start("phase_seconds");
/// // ... work ...
/// t.stop(&mut reg);
/// assert_eq!(reg.get("phase_seconds", &[]).unwrap().count, 1);
/// ```
#[derive(Debug)]
pub struct ScopedTimer {
    name: String,
    labels: Vec<(String, String)>,
    start: Instant,
}

impl ScopedTimer {
    /// Starts a timer that will record into histogram `name`.
    pub fn start(name: impl Into<String>) -> Self {
        Self::start_with_labels(name, &[])
    }

    /// Starts a timer recording into `name` with the given labels.
    pub fn start_with_labels(name: impl Into<String>, labels: &[(&str, &str)]) -> Self {
        ScopedTimer {
            name: name.into(),
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
                .collect(),
            start: Instant::now(),
        }
    }

    /// Seconds elapsed so far.
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Stops the timer and records the elapsed seconds as one observation in
    /// the registry's diagnostic histogram.
    pub fn stop(self, registry: &mut Registry) -> f64 {
        let secs = self.elapsed_seconds();
        let labels: Vec<(&str, &str)> = self
            .labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        registry.observe_diag(&self.name, &labels, secs);
        secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_records_a_diagnostic_observation() {
        let mut reg = Registry::new();
        let t = ScopedTimer::start_with_labels("phase_seconds", &[("phase", "setup")]);
        assert!(t.elapsed_seconds() >= 0.0);
        let secs = t.stop(&mut reg);
        let m = reg
            .get("phase_seconds", &[("phase", "setup")])
            .expect("recorded");
        assert!(m.diagnostic, "host time must be diagnostic-only");
        assert_eq!(m.count, 1);
        assert!((m.value - secs).abs() < 1e-12);
        // And therefore absent from the deterministic snapshot.
        assert!(reg
            .snapshot()
            .get("phase_seconds", &[("phase", "setup")])
            .is_none());
    }
}
