#!/usr/bin/env bash
# Repo hygiene gate: formatting, lints, tests. Run before every push.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -D warnings"
cargo clippy --offline --all-targets -- -D warnings

echo "==> adaqp-lint (simulation invariants; ratcheted against results/LINT_baseline.json)"
mkdir -p results
cargo run --offline --release -p analysis -- --workspace --json \
    --baseline results/LINT_baseline.json \
    | tee results/LINT_findings.json

echo "==> adaqp-lint --explain smoke"
cargo run --offline -q --release -p analysis -- --explain unmatched-comm >/dev/null
cargo run --offline -q --release -p analysis -- --explain collective-divergence >/dev/null

echo "==> adaqp-model (exhaustive small-scope model check of every DeviceProgram, n = 2..4)"
cargo run --offline -q --release -p analysis --bin adaqp-model -- --workspace --json \
    >results/MODEL_certificates.json
cargo run --offline -q --release -p analysis --bin adaqp-model -- --workspace >/dev/null
cargo run --offline -q --release -p analysis --bin adaqp-model -- --explain deadlock >/dev/null

echo "==> sanitizer smoke (ADAQP_SAN=1 pinned tiny run)"
ADAQP_SAN=1 cargo run --offline -q --release -p adaqp --bin adaqp -- \
    run --dataset tiny --method adaqp --machines 1 --devices 2 \
    --epochs 3 --hidden 16 --period 2 --seed 7 >/dev/null

echo "==> cargo test -q"
cargo test --offline -q

echo "==> sanitized codec tests (ADAQP_SAN=1: reference-pinning proptests under adversarial schedules)"
ADAQP_SAN=1 cargo test --offline -q -p quant

echo "==> scalability smoke (64 devices on the event core, racks + oversub)"
cargo run --offline -q --release -p adaqp --bin adaqp -- \
    run --dataset tiny --method adaqp --machines 16 --devices 4 \
    --epochs 2 --hidden 8 --seed 11 --rack-size 2 --oversub 4 >/dev/null

echo "==> deadlock gallery (static flags must match runtime diagnosis)"
cargo run --offline -q --release --example deadlock_gallery >/dev/null

echo "==> critical-path smoke (pinned Vanilla tiny run vs committed baseline)"
CP_TMP="$(mktemp)"
cargo run --offline -q --release -p adaqp --bin adaqp -- \
    run --dataset tiny --method vanilla --machines 1 --devices 2 \
    --epochs 6 --hidden 16 --seed 4242 \
    --critical-path "$CP_TMP" >/dev/null
cargo run --offline -q --release -p obs --bin adaqp-regress -- \
    results/baseline/critpath.snapshot.json "$CP_TMP" \
    --tolerances results/baseline/tolerances.json
rm -f "$CP_TMP"

echo "==> kernel bench smoke (scripts/bench.sh --smoke)"
scripts/bench.sh --smoke

echo "==> regression gate (scripts/regress.sh --smoke)"
scripts/regress.sh --smoke

echo "All checks passed."
