#!/usr/bin/env bash
# Repo hygiene gate: formatting, lints, tests. Run before every push.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -D warnings"
cargo clippy --offline --all-targets -- -D warnings

echo "==> adaqp-lint (simulation invariants)"
cargo run --offline --release -p analysis -- --workspace

echo "==> cargo test -q"
cargo test --offline -q

echo "==> kernel bench smoke (scripts/bench.sh --smoke)"
scripts/bench.sh --smoke

echo "==> regression gate (scripts/regress.sh --smoke)"
scripts/regress.sh --smoke

echo "All checks passed."
