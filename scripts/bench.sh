#!/usr/bin/env bash
# Kernel benchmark harness: runs the criterion benches that cover the
# deterministic parallel runtime (matmul, aggregation, quant_kernels,
# agg_parallel) in quick mode and records every reported mean into
# results/BENCH_kernels.json as {bench -> {ns, threads}}.
#
# threads is parsed from the `_t<N>` suffix the agg_parallel benches encode
# in their ids (null for thread-agnostic benches). Pass --full for the
# longer default sampling windows, or --smoke (used by scripts/check.sh) to
# run only agg_parallel on a tiny problem and leave the recorded JSON alone.
set -euo pipefail
cd "$(dirname "$0")/.."

# Sanitized runs re-execute every instrumented kernel under adversarial
# schedules — their timings are meaningless as benchmarks. Refuse to record.
if [[ -n "${ADAQP_SAN:-}" && "${ADAQP_SAN}" != "0" ]]; then
    echo "bench.sh: refusing to benchmark with ADAQP_SAN set;" \
        "sanitized runs measure the sanitizer, not the kernels" >&2
    exit 2
fi

# Likewise for the causal flight recorder: profiled runs interleave recorder
# bookkeeping with the schedule under test. Refuse to record.
if [[ -n "${ADAQP_PROFILE:-}" && "${ADAQP_PROFILE}" != "0" ]]; then
    echo "bench.sh: refusing to benchmark with ADAQP_PROFILE set;" \
        "profiled runs measure the flight recorder, not the kernels" >&2
    exit 2
fi

QUICK=1
SMOKE=0
case "${1:-}" in
--full) QUICK=0 ;;
--smoke) SMOKE=1 ;;
esac

OUT_DIR=results
OUT="$OUT_DIR/BENCH_kernels.json"
if [[ "$SMOKE" == 1 ]]; then
    export ADAQP_BENCH_ROWS="${ADAQP_BENCH_ROWS:-4096}"
    OUT="$(mktemp)"
fi
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

BENCHES=(matmul aggregation quant_kernels agg_parallel)
if [[ "$SMOKE" == 1 ]]; then
    BENCHES=(agg_parallel)
fi
for b in "${BENCHES[@]}"; do
    echo "==> cargo bench -p bench --bench $b" >&2
    ADAQP_BENCH_QUICK=$QUICK cargo bench --offline -q -p bench --bench "$b" \
        | tee -a "$RAW"
done

mkdir -p "$OUT_DIR"
# Host metadata for the recorded JSON. The `_` prefix keeps these keys out
# of adaqp-regress diffs (machine-dependent, not a regression signal).
CPUS="$(nproc)"
AT="${ADAQP_THREADS:-}"
[[ "$AT" =~ ^[0-9]+$ ]] || AT=null
# Cluster backend the workspace was built with: the discrete-event core
# ("event", the default) or the retired thread-per-device transport
# ("thread", only reachable through the test-only thread-backend feature).
BACKEND="${ADAQP_BACKEND:-event}"
# Effective worker-thread default: ADAQP_THREADS, else machine parallelism,
# capped at the runtime's MAX_THREADS = 8 (crates/tensor/src/par.rs).
EFFECTIVE="$CPUS"
[[ "$AT" != null ]] && EFFECTIVE="$AT"
((EFFECTIVE > 8)) && EFFECTIVE=8
# Shim stdout rows look like:
#   group/name        [      min       mean        max] ns/iter
# Keep the id and the mean; derive threads from a trailing _t<N>.
awk -v cpus="$CPUS" -v adaqp_threads="$AT" -v effective="$EFFECTIVE" -v backend="$BACKEND" '
    /ns\/iter/ {
        # Bench ids may contain spaces, so split on the [min mean max]
        # bracket instead of whitespace fields.
        if (!match($0, /\[[^\]]+\]/)) next
        body = substr($0, RSTART + 1, RLENGTH - 2)
        id = substr($0, 1, RSTART - 1)
        gsub(/[ \t]+$/, "", id)
        split(body, nums, " ")
        mean = nums[2]
        threads = "null"
        if (match(id, /_t[0-9]+$/)) {
            threads = substr(id, RSTART + 2)
        }
        sep = first ? "," : ""
        first = 1
        printf "%s\n  \"%s\": {\"ns\": %s, \"threads\": %s}", sep, id, mean, threads
    }
    BEGIN {
        printf "{"
        printf "\n  \"_meta\": {\"cpus\": %s, \"default_worker_threads\": %s, \"adaqp_threads_env\": %s, \"backend\": \"%s\"}", \
            cpus, effective, adaqp_threads, backend
        first = 1
    }
    END { printf "\n}\n" }
' "$RAW" > "$OUT"

echo "wrote $OUT ($(grep -c '"ns"' "$OUT") benches)" >&2
if [[ "$SMOKE" == 1 ]]; then
    rm -f "$OUT"
fi
