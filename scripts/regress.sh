#!/usr/bin/env bash
# Regression gate: re-run the pinned baseline experiment, regenerate its
# metrics snapshot, and diff it — plus the recorded kernel-bench JSON —
# against the committed baseline under results/baseline/ using the
# per-metric tolerances in results/baseline/tolerances.json. Any tolerance
# breach (or a metric that vanished) exits non-zero via adaqp-regress.
#
#   scripts/regress.sh --smoke   metrics snapshot + committed bench record
#                                (fast; scripts/check.sh runs this)
#   scripts/regress.sh --full    regenerates results/BENCH_kernels.json via
#                                scripts/bench.sh before diffing the timings
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=smoke
case "${1:-}" in
--full) MODE=full ;;
--smoke | "") MODE=smoke ;;
*)
    echo "usage: scripts/regress.sh [--smoke|--full]" >&2
    exit 2
    ;;
esac

BASE=results/baseline
TOL="$BASE/tolerances.json"
for f in "$BASE/metrics.snapshot.json" "$BASE/MODEL_certificates.json" "$TOL"; do
    [[ -f "$f" ]] || {
        echo "regress: missing $f (commit a baseline first)" >&2
        exit 2
    }
done

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# The pinned baseline experiment: tiny, fixed seed. Every metric in the
# default snapshot is simulation-derived, so the fresh snapshot must match
# the committed one to the tight default tolerance on any machine.
echo "==> regenerating metrics snapshot (pinned tiny run)" >&2
cargo run -q --release --offline -p adaqp --bin adaqp -- run \
    --dataset tiny --method adaqp --machines 1 --devices 2 \
    --epochs 6 --hidden 16 --period 3 --seed 4242 \
    --metrics "$TMP/metrics" >/dev/null

echo "==> adaqp-regress: fresh snapshot vs $BASE/metrics.snapshot.json" >&2
cargo run -q --release --offline -p obs --bin adaqp-regress -- \
    "$BASE/metrics.snapshot.json" "$TMP/metrics.json" --tolerances "$TOL"

echo "==> regenerating model certificates (adaqp-model --workspace)" >&2
cargo run -q --release --offline -p analysis --bin adaqp-model -- --workspace --json \
    >results/MODEL_certificates.json

echo "==> adaqp-regress: results/MODEL_certificates.json vs baseline" >&2
cargo run -q --release --offline -p obs --bin adaqp-regress -- \
    "$BASE/MODEL_certificates.json" results/MODEL_certificates.json --tolerances "$TOL"

if [[ "$MODE" == full ]]; then
    echo "==> regenerating kernel bench record (scripts/bench.sh)" >&2
    scripts/bench.sh
fi
echo "==> adaqp-regress: results/BENCH_kernels.json vs baseline" >&2
cargo run -q --release --offline -p obs --bin adaqp-regress -- \
    "$BASE/BENCH_kernels.json" results/BENCH_kernels.json --tolerances "$TOL"

echo "regress ($MODE): no regressions detected."
